#include "db/memory_arbiter.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "lsm/format/block_cache.h"
#include "lsm/lsm_tree.h"
#include "lsm/scheduler.h"
#include "stats/cardinality_estimator.h"
#include "stats/statistics_catalog.h"

namespace lsmstats {

namespace {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Floor for degenerate utility probes (NaN, inf, <= 0): keeps every budget
// weakly in the race so the proportional split stays well-defined.
constexpr double kMinUtility = 1e-3;

}  // namespace

MemoryArbiter::MemoryArbiter(uint64_t total_bytes,
                             BackgroundScheduler* scheduler,
                             std::chrono::milliseconds tick_interval)
    : total_bytes_(total_bytes),
      scheduler_(scheduler),
      tick_interval_ns_(
          std::chrono::duration_cast<std::chrono::nanoseconds>(tick_interval)
              .count()) {
  LSMSTATS_CHECK(total_bytes_ > 0);
}

MemoryArbiter::~MemoryArbiter() {
  MutexLock lock(&mu_);
  shutting_down_ = true;
  cv_.Wait(&mu_, [this]() REQUIRES(mu_) { return tasks_in_flight_ == 0; });
}

const MemoryArbiter::MemoryBudget* MemoryArbiter::Register(
    Registration registration) {
  auto budget = std::make_unique<MemoryBudget>();
  budget->name_ = std::move(registration.name);
  budget->min_bytes_ = registration.min_bytes;
  budget->max_bytes_ = std::max(registration.max_bytes, registration.min_bytes);
  budget->usage_ = std::move(registration.usage);
  budget->utility_ = std::move(registration.utility);
  budget->apply_ = std::move(registration.apply);
  const MemoryBudget* handle = budget.get();
  MutexLock lock(&mu_);
  budgets_.push_back(std::move(budget));
  return handle;
}

void MemoryArbiter::Rebalance() {
  // (apply callback, grant) pairs collected under the lock, invoked after
  // releasing it: apply() calls into trees/cache/estimator, whose locks rank
  // below kMemoryArbiter but whose code may in turn call NotePressure-style
  // hooks — keeping the arbiter lock out of those stacks keeps the contract
  // simple (apply runs lock-free from the arbiter's point of view).
  std::vector<std::pair<const std::function<void(uint64_t)>*, uint64_t>>
      applies;
  {
    MutexLock lock(&mu_);
    if (budgets_.empty()) return;

    const size_t n = budgets_.size();
    std::vector<uint64_t> grants(n, 0);
    std::vector<double> weights(n, kMinUtility);

    // Floor phase: everyone gets its minimum (clamped to its maximum).
    uint64_t committed = 0;
    for (size_t i = 0; i < n; ++i) {
      MemoryBudget& b = *budgets_[i];
      grants[i] = std::min(b.min_bytes_, b.max_bytes_);
      committed += grants[i];
      if (b.utility_) {
        const double u = b.utility_();
        if (std::isfinite(u) && u > kMinUtility) weights[i] = u;
      } else {
        weights[i] = 1.0;
      }
    }

    // Water-fill phase: split the remainder proportionally to utility,
    // re-running whenever a budget hits its cap so capped budgets stop
    // absorbing share. Deterministic: no randomness, stable iteration order.
    uint64_t remaining =
        total_bytes_ > committed ? total_bytes_ - committed : 0;
    std::vector<bool> capped(n, false);
    while (remaining > 0) {
      double active_weight = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (!capped[i] && grants[i] < budgets_[i]->max_bytes_) {
          active_weight += weights[i];
        }
      }
      if (active_weight <= 0.0) break;  // everyone capped
      uint64_t distributed = 0;
      for (size_t i = 0; i < n; ++i) {
        if (capped[i] || grants[i] >= budgets_[i]->max_bytes_) continue;
        const double share =
            static_cast<double>(remaining) * (weights[i] / active_weight);
        uint64_t add = static_cast<uint64_t>(share);
        const uint64_t headroom = budgets_[i]->max_bytes_ - grants[i];
        if (add >= headroom) {
          add = headroom;
          capped[i] = true;
        }
        grants[i] += add;
        distributed += add;
      }
      if (distributed == 0) {
        // Rounding stalled (shares all floored to zero): hand the residue to
        // the first uncapped budget so the loop terminates and the full
        // total is always granted.
        for (size_t i = 0; i < n; ++i) {
          if (capped[i] || grants[i] >= budgets_[i]->max_bytes_) continue;
          const uint64_t add =
              std::min(remaining, budgets_[i]->max_bytes_ - grants[i]);
          grants[i] += add;
          distributed += add;
          break;
        }
        if (distributed == 0) break;
      }
      remaining -= distributed;
    }

    applies.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      MemoryBudget& b = *budgets_[i];
      const uint64_t previous =
          b.granted_.exchange(grants[i], std::memory_order_relaxed);
      if (b.apply_ && grants[i] != previous) {
        applies.emplace_back(&b.apply_, grants[i]);
      }
    }
  }
  for (const auto& [apply, grant] : applies) {
    (*apply)(grant);
  }
  rebalances_.fetch_add(1, std::memory_order_relaxed);
}

void MemoryArbiter::MaybeTick() {
  const bool pressured = pressure_pending_.load(std::memory_order_relaxed);
  if (!pressured) {
    // Gate the clock read: hot paths call this per operation, so only every
    // 64th call even looks at the time.
    if ((tick_calls_.fetch_add(1, std::memory_order_relaxed) & 0x3F) != 0) {
      return;
    }
  }
  const int64_t now = MonotonicNowNs();
  int64_t last = last_tick_ns_.load(std::memory_order_relaxed);
  if (!pressured && now - last < tick_interval_ns_) return;
  // One caller claims the tick; everyone else keeps going.
  if (!last_tick_ns_.compare_exchange_strong(last, now,
                                             std::memory_order_relaxed)) {
    return;
  }
  pressure_pending_.store(false, std::memory_order_relaxed);
  ScheduleRebalance();
}

void MemoryArbiter::ScheduleRebalance() {
  if (scheduler_ == nullptr) {
    Rebalance();
    return;
  }
  {
    MutexLock lock(&mu_);
    if (shutting_down_) return;
    ++tasks_in_flight_;
  }
  scheduler_->Schedule(
      TaskPriority{TaskClass::kDefault, 0}, [this] {
        Rebalance();
        MutexLock lock(&mu_);
        --tasks_in_flight_;
        cv_.NotifyAll();
      });
}

std::vector<MemoryArbiter::GrantInfo> MemoryArbiter::Snapshot() const {
  std::vector<GrantInfo> out;
  MutexLock lock(&mu_);
  out.reserve(budgets_.size());
  for (const auto& budget : budgets_) {
    GrantInfo info;
    info.name = budget->name_;
    info.granted = budget->granted_.load(std::memory_order_relaxed);
    info.usage = budget->usage_ ? budget->usage_() : 0;
    info.min_bytes = budget->min_bytes_;
    info.max_bytes = budget->max_bytes_;
    out.push_back(std::move(info));
  }
  return out;
}

// --- Registration helpers ---------------------------------------------------

namespace {

constexpr uint64_t kMiB = 1ull << 20;
constexpr uint64_t kKiB = 1ull << 10;

}  // namespace

const MemoryArbiter::MemoryBudget* RegisterMemtableBudget(
    MemoryArbiter* arbiter, std::vector<LsmTree*> trees) {
  LSMSTATS_CHECK(arbiter != nullptr && !trees.empty());
  const uint64_t total = arbiter->total_bytes();
  MemoryArbiter::Registration reg;
  reg.name = "memtables";
  reg.min_bytes = std::max<uint64_t>(kMiB, total / 16);
  // Write buffers cap at half the budget: past that, bigger buffers stop
  // reducing flush counts proportionally (insert cost grows with buffer
  // size) while starving the read path of every byte.
  reg.max_bytes = std::max(reg.min_bytes, total / 2);
  reg.usage = [trees] {
    uint64_t bytes = 0;
    for (LsmTree* tree : trees) bytes += tree->TotalMemTableBytes();
    return bytes;
  };
  // Flushes-avoided-per-MB proxy: the faster the trees are flushing, the
  // more the next byte of write buffer is worth. Idle trees (no flush since
  // the last rebalance) bid near-nothing so a read phase can reclaim the
  // write buffers. `last` lives in the closure; utility calls are
  // serialized under the arbiter lock.
  reg.utility = [trees, last = std::make_shared<uint64_t>(0)]() mutable {
    uint64_t flushes = 0;
    for (LsmTree* tree : trees) flushes += tree->FlushesCompleted();
    const uint64_t delta = flushes - *last;
    *last = flushes;
    // Even one flush per tick window means the write buffers are cycling —
    // bid on par with a fully-thrashing cache (whose ceiling is 8.5).
    return 0.1 + 8.0 * static_cast<double>(std::min<uint64_t>(delta, 8));
  };
  reg.apply = [trees](uint64_t grant) {
    // Split the grant proportionally to each tree's live buffer footprint:
    // the primary's fat records dwarf the secondary-index entries, so an
    // even split would strand most of the grant on trees that never fill.
    // Every tree keeps a floor so an idle index still accepts writes; with
    // no usage anywhere (fresh dataset) the split is even.
    std::vector<uint64_t> usage(trees.size(), 0);
    uint64_t used_total = 0;
    for (size_t i = 0; i < trees.size(); ++i) {
      usage[i] = trees[i]->TotalMemTableBytes();
      used_total += usage[i];
    }
    for (size_t i = 0; i < trees.size(); ++i) {
      uint64_t share = grant / trees.size();
      if (used_total > 0) {
        share = static_cast<uint64_t>(
            static_cast<double>(grant) * (static_cast<double>(usage[i]) /
                                          static_cast<double>(used_total)));
      }
      trees[i]->SetMemTableMaxBytes(std::max<uint64_t>(share, 64 * kKiB));
    }
  };
  return arbiter->Register(std::move(reg));
}

const MemoryArbiter::MemoryBudget* RegisterBlockCacheBudget(
    MemoryArbiter* arbiter, BlockCache* cache) {
  LSMSTATS_CHECK(arbiter != nullptr && cache != nullptr);
  const uint64_t total = arbiter->total_bytes();
  MemoryArbiter::Registration reg;
  reg.name = "block_cache";
  reg.min_bytes = std::max<uint64_t>(256 * kKiB, total / 32);
  reg.max_bytes = total;
  reg.usage = [cache] { return cache->GetStats().charge; };
  // Recent miss rate plus occupancy: a cold or thrashing cache (high misses
  // per lookup since the last rebalance) bids high to grow, and a warm full
  // cache keeps a floor bid proportional to how much of its grant it is
  // actually using — otherwise a perfectly-sized cache would stop bidding,
  // shed capacity, and oscillate between warm and evicted.
  reg.utility = [cache, last = std::make_shared<std::pair<uint64_t, uint64_t>>(
                            0, 0)]() mutable {
    const BlockCache::Stats stats = cache->GetStats();
    const uint64_t hits = stats.hits - last->first;
    const uint64_t misses = stats.misses - last->second;
    last->first = stats.hits;
    last->second = stats.misses;
    const double occupancy =
        stats.capacity > 0 ? static_cast<double>(stats.charge) /
                                 static_cast<double>(stats.capacity)
                           : 0.0;
    const uint64_t lookups = hits + misses;
    if (lookups == 0) return 0.25 + 2.0 * occupancy;
    return 0.5 + 2.0 * occupancy +
           8.0 * static_cast<double>(misses) / static_cast<double>(lookups);
  };
  reg.apply = [cache](uint64_t grant) { cache->SetCapacity(grant); };
  return arbiter->Register(std::move(reg));
}

const MemoryArbiter::MemoryBudget* RegisterBloomBudget(
    MemoryArbiter* arbiter, std::vector<LsmTree*> trees) {
  LSMSTATS_CHECK(arbiter != nullptr && !trees.empty());
  const uint64_t total = arbiter->total_bytes();
  MemoryArbiter::Registration reg;
  reg.name = "blooms";
  reg.min_bytes = 64 * kKiB;
  reg.max_bytes = std::max<uint64_t>(64 * kKiB, total / 8);
  reg.usage = [trees] {
    uint64_t bytes = 0;
    for (LsmTree* tree : trees) bytes += tree->TotalBloomBytes();
    return bytes;
  };
  // Blooms are sized for future components, not resized live, so they place
  // a flat modest bid and rely on their min/max band for protection.
  reg.utility = [] { return 0.05; };
  reg.apply = [trees](uint64_t grant) {
    const uint64_t per_tree = grant / trees.size();
    for (LsmTree* tree : trees) {
      // Translate the byte grant into a filter density for components built
      // from now on: grant bytes spread over the records currently on disk
      // (at least one so an empty tree gets the dense default).
      uint64_t records = 0;
      for (const auto& meta : tree->ComponentsMetadata()) {
        records += meta.record_count;
      }
      const uint64_t bits = per_tree * 8 / std::max<uint64_t>(records, 1);
      const int bits_per_key =
          static_cast<int>(std::clamp<uint64_t>(bits, 2, 16));
      tree->SetBloomBitsPerKey(bits_per_key);
    }
  };
  return arbiter->Register(std::move(reg));
}

const MemoryArbiter::MemoryBudget* RegisterEstimatorBudget(
    MemoryArbiter* arbiter, CardinalityEstimator* estimator,
    const StatisticsCatalog* catalog) {
  LSMSTATS_CHECK(arbiter != nullptr && estimator != nullptr);
  const uint64_t total = arbiter->total_bytes();
  MemoryArbiter::Registration reg;
  reg.name = "synopses";
  reg.min_bytes = 64 * kKiB;
  reg.max_bytes = std::max<uint64_t>(64 * kKiB, total / 4);
  reg.usage = [estimator, catalog] {
    uint64_t bytes = estimator->CachedBytes();
    if (catalog != nullptr) bytes += catalog->TotalStorageBytes();
    return bytes;
  };
  // Synopses shrink gracefully (coarser buckets), so the estimator places a
  // flat modest bid rather than competing with hot read/write components.
  reg.utility = [] { return 0.05; };
  reg.apply = [estimator](uint64_t grant) {
    estimator->SetCacheByteBudget(grant);
  };
  return arbiter->Register(std::move(reg));
}

uint64_t EnvironmentTotalMemoryMb() {
  static const uint64_t mb = [] {
    const char* value =
        std::getenv("LSMSTATS_TOTAL_MEMORY_MB");  // NOLINT(concurrency-mt-unsafe)
    if (value == nullptr || value[0] == '\0') return uint64_t{0};
    return static_cast<uint64_t>(std::strtoull(value, nullptr, 10));
  }();
  return mb;
}

}  // namespace lsmstats
