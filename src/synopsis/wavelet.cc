#include "synopsis/wavelet.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace lsmstats {

namespace {

int DepthOf(uint64_t index) {
  LSMSTATS_DCHECK(index >= 1);
  return std::bit_width(index) - 1;
}

}  // namespace

double WaveletImportance(uint64_t index, double value, int log_domain) {
  int support_log =
      index == 0 ? log_domain : log_domain - DepthOf(index);
  return std::abs(value) * std::exp2(0.5 * support_log);
}

bool WaveletPreOrderLess(uint64_t a, uint64_t b) {
  if (a == b) return false;
  if (a == 0) return true;   // The overall average leads the serialization.
  if (b == 0) return false;
  int da = DepthOf(a);
  int db = DepthOf(b);
  int m = std::min(da, db);
  uint64_t pa = a >> (da - m);
  uint64_t pb = b >> (db - m);
  if (pa != pb) {
    // Divergent subtrees: at equal depth, numeric order is left-to-right
    // order, which matches pre-order.
    return pa < pb;
  }
  // One is an ancestor of the other; the ancestor comes first in pre-order.
  return da < db;
}

WaveletSynopsis::WaveletSynopsis(const ValueDomain& domain, size_t budget,
                                 WaveletEncoding encoding,
                                 std::vector<WaveletCoefficient> coefficients,
                                 uint64_t total_records)
    : domain_(domain),
      budget_(budget),
      encoding_(encoding),
      total_records_(total_records) {
  LSMSTATS_CHECK(budget >= 1);
  coefficients_.reserve(coefficients.size());
  for (const WaveletCoefficient& c : coefficients) {
    if (c.value != 0.0) coefficients_.emplace(c.index, c.value);
  }
  Threshold(budget_);
}

double WaveletSynopsis::ReconstructPoint(uint64_t position) const {
  const int log_domain = domain_.log_length();
  auto root = coefficients_.find(0);
  double value = root == coefficients_.end() ? 0.0 : root->second;
  uint64_t node = 1;
  for (int d = log_domain - 1; d >= 0; --d) {
    auto it = coefficients_.find(node);
    uint64_t bit = (position >> d) & 1;
    if (it != coefficients_.end()) {
      // Detail adds +c over the right half of its support, -c over the left.
      value += bit ? it->second : -it->second;
    }
    if (d > 0) node = (node << 1) | bit;
  }
  return value;
}

double WaveletSynopsis::RangeSum(uint64_t lo, uint64_t hi) const {
  LSMSTATS_DCHECK(lo <= hi);
  const int log_domain = domain_.log_length();
  double width = static_cast<double>(hi - lo) + 1.0;
  double sum = 0.0;
  auto overlap = [lo, hi](uint64_t a, uint64_t b) -> double {
    // |[lo, hi] ∩ [a, b]| with inclusive bounds.
    uint64_t s = std::max(lo, a);
    uint64_t e = std::min(hi, b);
    return e >= s ? static_cast<double>(e - s) + 1.0 : 0.0;
  };
  for (const auto& [index, value] : coefficients_) {
    if (index == 0) {
      sum += value * width;
      continue;
    }
    int depth = DepthOf(index);
    if (depth >= log_domain) continue;  // corrupt index; defensively skip
    int support_log = log_domain - depth;
    int half_log = support_log - 1;
    // depth == 0 means index 1, the root detail, whose support starts at 0
    // (guarding the undefined shift by support_log == 64).
    uint64_t start =
        depth == 0 ? 0 : (index - (1ULL << depth)) << support_log;
    uint64_t mid = start + (1ULL << half_log);
    uint64_t last = mid + (1ULL << half_log) - 1;
    // Right half gains +value, left half gains -value.
    sum += value * (overlap(mid, last) - overlap(start, mid - 1));
  }
  return sum;
}

double WaveletSynopsis::EstimateRange(int64_t lo, int64_t hi) const {
  if (hi < lo) return 0.0;
  lo = std::max(lo, domain_.min_value());
  hi = std::min(hi, domain_.max_value());
  if (hi < lo) return 0.0;
  uint64_t lo_pos = domain_.Position(lo);
  uint64_t hi_pos = domain_.Position(hi);
  if (encoding_ == WaveletEncoding::kRawFrequency) {
    return RangeSum(lo_pos, hi_pos);
  }
  // Prefix-sum encoding: cardinality([lo, hi]) = P[hi] - P[lo - 1], two
  // root-to-leaf reconstructions (§3.6).
  double upper = ReconstructPoint(hi_pos);
  double lower = lo_pos == 0 ? 0.0 : ReconstructPoint(lo_pos - 1);
  return upper - lower;
}

Status WaveletSynopsis::MergeFrom(const WaveletSynopsis& other) {
  if (!(domain_ == other.domain_) || encoding_ != other.encoding_) {
    return Status::InvalidArgument(
        "wavelet synopses must share domain and encoding to merge");
  }
  // The Haar transform is linear: transform(f + g) = transform(f) +
  // transform(g), so coefficient-wise addition combines the synopses. Some
  // accuracy is lost because both inputs were already thresholded (§3.5).
  for (const auto& [index, value] : other.coefficients_) {
    double& slot = coefficients_[index];
    slot += value;
    if (slot == 0.0) coefficients_.erase(index);
  }
  total_records_ += other.total_records_;
  Threshold(budget_);
  return Status::OK();
}

void WaveletSynopsis::Threshold(size_t budget) {
  LSMSTATS_DCHECK_GE(budget, size_t{1});
  if (coefficients_.size() <= budget) return;
  std::vector<std::pair<double, uint64_t>> ranked;
  ranked.reserve(coefficients_.size());
  for (const auto& [index, value] : coefficients_) {
    ranked.emplace_back(WaveletImportance(index, value, domain_.log_length()),
                        index);
  }
  std::nth_element(
      ranked.begin(), ranked.begin() + static_cast<ptrdiff_t>(budget) - 1,
      ranked.end(), [](const auto& a, const auto& b) { return a > b; });
  for (size_t i = budget; i < ranked.size(); ++i) {
    coefficients_.erase(ranked[i].second);
  }
  // Post-condition: thresholding brought the synopsis within its element
  // budget; every caller (constructor, MergeFrom) relies on this to keep the
  // serialized size bounded.
  LSMSTATS_DCHECK_LE(coefficients_.size(), budget);
}

std::vector<WaveletCoefficient> WaveletSynopsis::CoefficientsInPreOrder()
    const {
  std::vector<WaveletCoefficient> result;
  result.reserve(coefficients_.size());
  for (const auto& [index, value] : coefficients_) {
    result.push_back({index, value});
  }
  std::sort(result.begin(), result.end(),
            [](const WaveletCoefficient& a, const WaveletCoefficient& b) {
              return WaveletPreOrderLess(a.index, b.index);
            });
  return result;
}

void WaveletSynopsis::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutU8(static_cast<uint8_t>(encoding_));
  auto ordered = CoefficientsInPreOrder();
  enc->PutVarint64(ordered.size());
  for (const WaveletCoefficient& c : ordered) {
    enc->PutU64(c.index);
    enc->PutDouble(c.value);
  }
}

StatusOr<std::unique_ptr<WaveletSynopsis>> WaveletSynopsis::DecodeFrom(
    Decoder* dec) {
  int64_t min_value;
  uint8_t log_length;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min_value));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log_length));
  if (log_length < 1 || log_length > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, count;
  uint8_t encoding;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&encoding));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&count));
  if (budget == 0) return Status::Corruption("zero wavelet budget");
  if (encoding > 1) return Status::Corruption("bad wavelet encoding");
  if (budget > (1ULL << 26) || count > dec->remaining() / 16) {
    return Status::Corruption("wavelet size exceeds buffer");
  }
  std::vector<WaveletCoefficient> coefficients(count);
  for (auto& c : coefficients) {
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&c.index));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&c.value));
  }
  return std::make_unique<WaveletSynopsis>(
      ValueDomain(min_value, log_length), static_cast<size_t>(budget),
      static_cast<WaveletEncoding>(encoding), std::move(coefficients), total);
}

std::unique_ptr<Synopsis> WaveletSynopsis::Clone() const {
  return std::make_unique<WaveletSynopsis>(*this);
}

std::string WaveletSynopsis::DebugString() const {
  return "Wavelet(coefficients=" + std::to_string(coefficients_.size()) +
         ", encoding=" +
         (encoding_ == WaveletEncoding::kPrefixSum ? "prefix-sum" : "raw") +
         ", total=" + std::to_string(total_records_) + ")";
}

}  // namespace lsmstats
