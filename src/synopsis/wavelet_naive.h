// Reference (non-streaming) Haar wavelet decomposition.
//
// Materializes the full frequency vector over the domain, optionally converts
// it to a prefix sum, runs the textbook O(D) recursive averaging pass, and
// keeps the top-B coefficients under the L2 normalization. Only usable for
// small domains (log_length <= 24 by default); it exists as
//
//  * the ground truth the streaming Algorithm 1 implementation is verified
//    against (they must select the identical coefficient set), and
//  * the raw-frequency baseline for the prefix-sum ablation experiment
//    (paper §3.2 motivates prefix sums by their accuracy on range queries).

#ifndef LSMSTATS_SYNOPSIS_WAVELET_NAIVE_H_
#define LSMSTATS_SYNOPSIS_WAVELET_NAIVE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "synopsis/wavelet.h"

namespace lsmstats {

// `tuples` are (domain position, frequency) pairs, strictly increasing by
// position. Requires domain.log_length() <= 28.
std::unique_ptr<WaveletSynopsis> BuildWaveletNaive(
    const ValueDomain& domain, size_t budget, WaveletEncoding encoding,
    const std::vector<std::pair<uint64_t, uint64_t>>& tuples);

// Streaming-builder-compatible wrapper around the naive raw-frequency
// decomposition, used by the prefix-sum ablation bench.
class NaiveWaveletBuilder : public SynopsisBuilder {
 public:
  NaiveWaveletBuilder(const ValueDomain& domain, size_t budget,
                      WaveletEncoding encoding);

  void Add(int64_t value) override;
  std::unique_ptr<Synopsis> Finish() override;

 private:
  ValueDomain domain_;
  size_t budget_;
  WaveletEncoding encoding_;
  std::vector<std::pair<uint64_t, uint64_t>> tuples_;
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_WAVELET_NAIVE_H_
