#include "synopsis/wavelet_naive.h"

#include <algorithm>

#include "common/check.h"

namespace lsmstats {

std::unique_ptr<WaveletSynopsis> BuildWaveletNaive(
    const ValueDomain& domain, size_t budget, WaveletEncoding encoding,
    const std::vector<std::pair<uint64_t, uint64_t>>& tuples) {
  const int log_domain = domain.log_length();
  LSMSTATS_CHECK(log_domain <= 28);
  const uint64_t length = 1ULL << log_domain;

  // Materialize the signal.
  std::vector<double> signal(length, 0.0);
  uint64_t total_records = 0;
  for (const auto& [position, frequency] : tuples) {
    LSMSTATS_CHECK(position < length);
    signal[position] += static_cast<double>(frequency);
    total_records += frequency;
  }
  if (encoding == WaveletEncoding::kPrefixSum) {
    for (uint64_t i = 1; i < length; ++i) signal[i] += signal[i - 1];
  }

  // Textbook decomposition: repeatedly average pairs; the detail for the
  // pair (left, right) is (right - left) / 2 and lands at the error-tree
  // node covering both halves.
  std::vector<WaveletCoefficient> coefficients;
  std::vector<double> current = std::move(signal);
  uint64_t level_length = length;
  while (level_length > 1) {
    std::vector<double> next(level_length / 2);
    for (uint64_t i = 0; i < level_length / 2; ++i) {
      double left = current[2 * i];
      double right = current[2 * i + 1];
      next[i] = (left + right) / 2.0;
      double detail = (right - left) / 2.0;
      if (detail != 0.0) {
        // Parent node index: 2^(depth) + i where depth corresponds to the
        // next (coarser) level.
        uint64_t index = (level_length / 2) + i;
        coefficients.push_back({index, detail});
      }
    }
    current = std::move(next);
    level_length /= 2;
  }
  if (current[0] != 0.0) {
    coefficients.push_back({0, current[0]});  // Overall average.
  }

  // Top-B selection under the L2 normalization.
  if (coefficients.size() > budget) {
    std::nth_element(
        coefficients.begin(),
        coefficients.begin() + static_cast<ptrdiff_t>(budget) - 1,
        coefficients.end(),
        [log_domain](const WaveletCoefficient& a,
                     const WaveletCoefficient& b) {
          return WaveletImportance(a.index, a.value, log_domain) >
                 WaveletImportance(b.index, b.value, log_domain);
        });
    coefficients.resize(budget);
  }
  return std::make_unique<WaveletSynopsis>(domain, budget, encoding,
                                           std::move(coefficients),
                                           total_records);
}

NaiveWaveletBuilder::NaiveWaveletBuilder(const ValueDomain& domain,
                                         size_t budget,
                                         WaveletEncoding encoding)
    : domain_(domain), budget_(budget), encoding_(encoding) {}

void NaiveWaveletBuilder::Add(int64_t value) {
  uint64_t position = domain_.Position(value);
  if (!tuples_.empty() && tuples_.back().first == position) {
    ++tuples_.back().second;
    return;
  }
  LSMSTATS_CHECK(tuples_.empty() || position > tuples_.back().first);
  tuples_.push_back({position, 1});
}

std::unique_ptr<Synopsis> NaiveWaveletBuilder::Finish() {
  return BuildWaveletNaive(domain_, budget_, encoding_, tuples_);
}

}  // namespace lsmstats
