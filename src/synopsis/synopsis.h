// Statistical synopsis interface (paper §3.2).
//
// A synopsis is a compressed representation of the frequency distribution of
// one indexed attribute within one LSM component. All synopsis types share an
// element budget where one element — a histogram bucket (right border +
// count) or a wavelet coefficient (error-tree index + value) — occupies the
// same serialized space, so storage budgets compare fairly across types.
//
// Estimates are range-sums over the attribute's value domain: the estimated
// number of records with lo <= value <= hi. Mergeability is a per-type trait
// (paper §3.5): equi-width histograms and wavelets merge, equi-height
// histograms do not.

#ifndef LSMSTATS_SYNOPSIS_SYNOPSIS_H_
#define LSMSTATS_SYNOPSIS_SYNOPSIS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/coding.h"
#include "common/status.h"
#include "common/types.h"

namespace lsmstats {

enum class SynopsisType : uint8_t {
  kNone = 0,  // statistics collection disabled (the NoStats baseline)
  kEquiWidthHistogram = 1,
  kEquiHeightHistogram = 2,
  kWavelet = 3,
  // Greenwald-Khanna quantile sketch — the §5 future-work extension for
  // attributes without an index-imposed sort order.
  kGKQuantile = 4,
  // MaxDiff(V,A) — the offline multi-pass reference histogram the paper
  // excludes from the streaming framework (§2); built only by the offline
  // ANALYZE job and used as an accuracy yardstick.
  kMaxDiff = 5,
  // 2-D equi-width grid over a composite key's two attributes — the §5
  // multidimensional future work. Built by the composite-key collector,
  // not the scalar builder factory.
  kGrid2D = 6,
  // V-Optimal — the offline DP reference the paper's latency budget rules
  // out (§1); built only by ANALYZE, used by the build-cost ablation.
  kVOptimal = 7,
};

const char* SynopsisTypeToString(SynopsisType type);

// True when two synopses of this type can be combined into one synopsis
// summarizing the union of their inputs (paper §3.5).
bool SynopsisTypeIsMergeable(SynopsisType type);

class Synopsis {
 public:
  virtual ~Synopsis() = default;

  virtual SynopsisType type() const = 0;
  virtual const ValueDomain& domain() const = 0;

  // Estimated number of records with value in [lo, hi], both inclusive.
  // Values outside the domain are clamped. May be slightly negative for
  // wavelets (thresholding error); callers clamp as needed.
  virtual double EstimateRange(int64_t lo, int64_t hi) const = 0;

  double EstimatePoint(int64_t value) const {
    return EstimateRange(value, value);
  }

  // Elements (buckets / coefficients) actually retained.
  virtual size_t ElementCount() const = 0;

  // Configured element budget.
  virtual size_t Budget() const = 0;

  // Total number of records this synopsis summarizes.
  virtual uint64_t TotalRecords() const = 0;

  virtual void EncodeTo(Encoder* enc) const = 0;

  virtual std::unique_ptr<Synopsis> Clone() const = 0;

  virtual std::string DebugString() const = 0;
};

// Deserializes any synopsis (inverse of EncodeTo; the type tag is part of
// the encoding).
[[nodiscard]] StatusOr<std::unique_ptr<Synopsis>> DecodeSynopsis(Decoder* dec);

// Combines two synopses of the same mergeable type and domain into one with
// element budget `budget`. Fails with FailedPrecondition for non-mergeable
// types and InvalidArgument for mismatched domains/types.
[[nodiscard]]
StatusOr<std::unique_ptr<Synopsis>> MergeSynopses(const Synopsis& a,
                                                  const Synopsis& b,
                                                  size_t budget);

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_SYNOPSIS_H_
