#include "synopsis/wavelet_builder.h"

#include <bit>

#include "common/check.h"

namespace lsmstats {

StreamingWaveletBuilder::StreamingWaveletBuilder(const ValueDomain& domain,
                                                 size_t budget)
    : domain_(domain), budget_(budget) {
  LSMSTATS_CHECK(budget >= 1);
}

void StreamingWaveletBuilder::Add(int64_t value) {
  LSMSTATS_DCHECK(domain_.Contains(value));
  LSMSTATS_CHECK(!finished_);
  uint64_t position = domain_.Position(value);
  if (has_pending_ && position == last_position_) {
    ++pending_frequency_;
    ++total_records_;
    return;
  }
  LSMSTATS_CHECK(!has_pending_ || position > last_position_);
  EmitPendingPosition();
  has_pending_ = true;
  last_position_ = position;
  pending_frequency_ = 1;
  ++total_records_;
}

void StreamingWaveletBuilder::EmitPendingPosition() {
  if (!has_pending_) return;
  EmitPosition(last_position_, pending_frequency_);
  has_pending_ = false;
}

void StreamingWaveletBuilder::EmitPosition(uint64_t position,
                                           uint64_t frequency) {
  // Leaves in the gap (next_position_, ..., position - 1) all carry the
  // prefix sum accumulated so far (the signal is a prefix sum, so it is
  // constant between occupied positions).
  if (position > next_position_) {
    FillConstantRun(next_position_, position - 1, prefix_sum_);
  }
  prefix_sum_ += static_cast<double>(frequency);
  Push(0, position, prefix_sum_);
  next_position_ = position + 1;
}

void StreamingWaveletBuilder::FillConstantRun(uint64_t first, uint64_t last,
                                              double value) {
  LSMSTATS_DCHECK(first <= last);
  uint64_t position = first;
  for (;;) {
    // Largest aligned dyadic interval starting at `position` that fits in
    // [position, last]. Both the alignment and the span bound are capped at
    // 63 so the interval length always fits in a uint64; a full 2^64 run
    // simply becomes two half-domain pushes that cascade in Push().
    int align = position == 0 ? 63 : std::countr_zero(position);
    uint64_t span = last - position;  // inclusive span minus one
    int fit = span == UINT64_MAX ? 63 : std::bit_width(span + 1) - 1;
    int level = std::min(std::min(align, fit), 63);
    Push(level, position, value);
    uint64_t length = 1ULL << level;
    if (span < length) break;  // covered through `last` (avoids overflow)
    position += length;
  }
}

void StreamingWaveletBuilder::Push(int level, uint64_t start, double value) {
  const int log_domain = domain_.log_length();
  while (!stack_.empty() && stack_.back().level == level) {
    const AvgCoeff left = stack_.back();
    stack_.pop_back();
    LSMSTATS_DCHECK(start == left.start + (1ULL << level));
    // Combine the sibling averages (paper `average`): the detail coefficient
    // is (right - left) / 2 under the Appendix B sign convention.
    double detail = (value - left.value) / 2.0;
    double average = (left.value + value) / 2.0;
    int parent_level = level + 1;
    // Error-tree index of the parent node covering [left.start,
    // left.start + 2^parent_level).
    uint64_t index = (1ULL << (log_domain - parent_level)) +
                     (parent_level == 64 ? 0 : left.start >> parent_level);
    Offer(index, detail);
    value = average;
    level = parent_level;
    start = left.start;
  }
  LSMSTATS_DCHECK(stack_.empty() || stack_.back().level > level);
  stack_.push_back({level, start, value});
}

void StreamingWaveletBuilder::Offer(uint64_t index, double value) {
  if (value == 0.0) return;  // Zero coefficients can never be significant.
  double importance = WaveletImportance(index, value, domain_.log_length());
  if (top_coefficients_.size() < budget_) {
    top_coefficients_.push({importance, {index, value}});
    return;
  }
  if (importance > top_coefficients_.top().importance) {
    top_coefficients_.pop();
    top_coefficients_.push({importance, {index, value}});
  }
}

std::unique_ptr<Synopsis> StreamingWaveletBuilder::Finish() {
  LSMSTATS_CHECK(!finished_);
  finished_ = true;
  EmitPendingPosition();
  if (total_records_ == 0) {
    // Empty input: the whole signal is zero; every coefficient is zero.
    std::vector<WaveletCoefficient> none;
    return std::make_unique<WaveletSynopsis>(domain_, budget_,
                                             WaveletEncoding::kPrefixSum,
                                             std::move(none), 0);
  }
  // Pad the tail of the domain: the prefix sum stays at its final value
  // through the last position (paper Algorithm 1 line 8). next_position_
  // wraps to 0 exactly when the last occupied position was the top of a
  // 2^64 domain, in which case there is nothing to pad.
  uint64_t max_position = domain_.MaxPosition();
  if (next_position_ != 0 && next_position_ <= max_position) {
    FillConstantRun(next_position_, max_position, prefix_sum_);
  }
  // The stack has collapsed to the single overall average (paper line 9: the
  // main average is also a valid coefficient).
  LSMSTATS_CHECK(stack_.size() == 1);
  LSMSTATS_CHECK(stack_.back().level == domain_.log_length());
  Offer(0, stack_.back().value);

  std::vector<WaveletCoefficient> coefficients;
  coefficients.reserve(top_coefficients_.size());
  while (!top_coefficients_.empty()) {
    coefficients.push_back(top_coefficients_.top().coefficient);
    top_coefficients_.pop();
  }
  return std::make_unique<WaveletSynopsis>(domain_, budget_,
                                           WaveletEncoding::kPrefixSum,
                                           std::move(coefficients),
                                           total_records_);
}

}  // namespace lsmstats
