// MaxDiff(V,A) histogram — an OFFLINE reference synopsis.
//
// Poosala et al. [41] showed MaxDiff (bucket boundaries at the B-1 largest
// differences of adjacent area values, area = spread x frequency) beats
// canonical equi-width/equi-height histograms. The paper excludes it from
// the LSM framework because its construction "requires multiple passes over
// the sorted data, which can not be achieved in a streaming environment"
// (§2) — it needs the complete (value, frequency) aggregate before placing
// any boundary.
//
// It is implemented here exactly as that reference point: built by the
// offline ANALYZE job (stats/analyze_job.h) from a full scan, and used by
// the ablation benches to quantify what the framework's linear-time
// single-pass restriction costs in accuracy.
//
// MaxDiff histograms are not mergeable (boundaries are data-dependent, like
// equi-height).

#ifndef LSMSTATS_SYNOPSIS_MAXDIFF_HISTOGRAM_H_
#define LSMSTATS_SYNOPSIS_MAXDIFF_HISTOGRAM_H_

#include <memory>
#include <utility>
#include <vector>

#include "synopsis/synopsis.h"

namespace lsmstats {

class MaxDiffHistogram : public Synopsis {
 public:
  // Unlike the equi-height layout, MaxDiff buckets record BOTH extents, so
  // the gap between two buckets estimates to exactly zero and an isolated
  // spike keeps its full mass. This costs half an extra element per bucket,
  // an acceptable deviation for an offline accuracy yardstick.
  struct Bucket {
    uint64_t left_position = 0;
    uint64_t right_position = 0;  // inclusive
    double count = 0.0;
  };

  MaxDiffHistogram(const ValueDomain& domain, size_t budget,
                   std::vector<Bucket> buckets, uint64_t total_records);

  // Builds from the complete value-frequency aggregate, positions strictly
  // ascending — the input only a full offline pass can produce.
  static std::unique_ptr<MaxDiffHistogram> Build(
      const ValueDomain& domain, size_t budget,
      const std::vector<std::pair<uint64_t, uint64_t>>& position_frequencies);

  SynopsisType type() const override { return SynopsisType::kMaxDiff; }
  const ValueDomain& domain() const override { return domain_; }
  double EstimateRange(int64_t lo, int64_t hi) const override;
  size_t ElementCount() const override { return buckets_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<MaxDiffHistogram>> DecodeFrom(Decoder* dec);

 private:
  ValueDomain domain_;
  size_t budget_;
  std::vector<Bucket> buckets_;
  uint64_t total_records_;
};

// V-Optimal histogram — the second OFFLINE reference synopsis.
//
// Buckets are placed to minimize the total within-bucket frequency variance
// (SSE), via the classic O(V^2 * B) dynamic program — the "increased time
// complexity" that rules it out of the paper's on-the-fly framework (§1:
// "this would effectively eliminate synopses-collecting algorithms with
// high asymptotic complexity (like V-optimal histograms)"). Implemented so
// the build-cost ablation can demonstrate that argument with numbers, and
// as a second accuracy yardstick next to MaxDiff.
//
// Shares the explicit-extent bucket representation (and estimate semantics)
// with MaxDiffHistogram. Not mergeable; offline (ANALYZE) only.
class VOptimalHistogram : public Synopsis {
 public:
  using Bucket = MaxDiffHistogram::Bucket;

  VOptimalHistogram(const ValueDomain& domain, size_t budget,
                    std::vector<Bucket> buckets, uint64_t total_records);

  // O(V^2 * B) dynamic program over the complete aggregate. Caps V at a few
  // thousand in practice; the bench measures exactly how it scales.
  static std::unique_ptr<VOptimalHistogram> Build(
      const ValueDomain& domain, size_t budget,
      const std::vector<std::pair<uint64_t, uint64_t>>& position_frequencies);

  SynopsisType type() const override { return SynopsisType::kVOptimal; }
  const ValueDomain& domain() const override { return domain_; }
  double EstimateRange(int64_t lo, int64_t hi) const override;
  size_t ElementCount() const override { return buckets_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<VOptimalHistogram>> DecodeFrom(
      Decoder* dec);

 private:
  ValueDomain domain_;
  size_t budget_;
  std::vector<Bucket> buckets_;
  uint64_t total_records_;
};

// Shared estimate logic for explicit-extent bucket lists (MaxDiff and
// V-Optimal).
double EstimateExtentBuckets(const ValueDomain& domain,
                             const std::vector<MaxDiffHistogram::Bucket>& b,
                             int64_t lo, int64_t hi);

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_MAXDIFF_HISTOGRAM_H_
