// Two-dimensional equi-width grid histogram (paper §5 future work:
// "multidimensional index types (e.g., B-Trees with composite keys)" and
// multi-dimensional synopses [49, 50]).
//
// A composite secondary index <SK1, SK2, PK> delivers its entries sorted by
// (SK1, SK2), so a grid of bx x by equi-width cells over the two attribute
// domains can be populated in the same single streaming pass as the 1-D
// synopses. 2-D estimates answer conjunctive range predicates
// (a <= f1 <= b AND c <= f2 <= d) without the attribute-independence
// assumption that multiplying two 1-D estimates makes — the classic source
// of join-order disasters on correlated attributes.
//
// One grid cell serializes like ~1.5 plain elements (two borders + count
// are amortized by the grid structure: only counts are stored, cell extents
// are implicit), so budgets stay comparable: budget = bx * by cells.
// Grid histograms merge (add cell counts), like their 1-D counterpart.

#ifndef LSMSTATS_SYNOPSIS_GRID_HISTOGRAM_H_
#define LSMSTATS_SYNOPSIS_GRID_HISTOGRAM_H_

#include <memory>
#include <vector>

#include "synopsis/synopsis.h"

namespace lsmstats {

class GridHistogram : public Synopsis {
 public:
  // An empty grid with `cells_per_dim[i]`^2 total cells; budget is split
  // evenly: bx = by = floor(sqrt(budget)).
  GridHistogram(const ValueDomain& domain0, const ValueDomain& domain1,
                size_t budget);

  SynopsisType type() const override { return SynopsisType::kGrid2D; }
  // The primary (first) attribute's domain.
  const ValueDomain& domain() const override { return domain0_; }
  const ValueDomain& domain1() const { return domain1_; }

  // 1-D estimates marginalize over the second attribute.
  double EstimateRange(int64_t lo, int64_t hi) const override;

  // Conjunctive 2-D estimate: records with lo0 <= f1 <= hi0 AND
  // lo1 <= f2 <= hi1 (continuous-value assumption within cells, both axes).
  double EstimateRange2D(int64_t lo0, int64_t hi0, int64_t lo1,
                         int64_t hi1) const;

  size_t ElementCount() const override { return counts_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<GridHistogram>> DecodeFrom(Decoder* dec);

  // Adds one record at (v0, v1); values may arrive in any order but the
  // composite collector always feeds them (SK1, SK2)-sorted.
  void AddValue(int64_t v0, int64_t v1, double count);

  [[nodiscard]] Status MergeFrom(const GridHistogram& other);

  size_t cells_per_dim() const { return cells_per_dim_; }

 private:
  // Cell index along one axis.
  size_t CellOf(const ValueDomain& domain, uint64_t position) const;
  // Inclusive position extent of cell `c` along `domain`'s axis.
  std::pair<uint64_t, uint64_t> CellRange(const ValueDomain& domain,
                                          size_t cell) const;
  // Fraction of cell `c` (along `domain`) covered by [lo_pos, hi_pos].
  double AxisOverlap(const ValueDomain& domain, size_t cell, uint64_t lo_pos,
                     uint64_t hi_pos) const;

  ValueDomain domain0_;
  ValueDomain domain1_;
  size_t budget_;
  size_t cells_per_dim_;
  std::vector<double> counts_;  // row-major: [cell0 * cells_per_dim + cell1]
  uint64_t total_records_ = 0;
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_GRID_HISTOGRAM_H_
