// Equi-height (equi-depth) histogram synopsis.
//
// The bucket height — the histogram "invariant" — is fixed up front from the
// total record count of the input stream (known exactly for flushes and
// bulkloads, and as the pre-reconciliation sum for merges; paper §3.2).
// Buckets are then closed left-to-right as the sorted stream is consumed.
// All duplicates of one value stay in one bucket, so a heavily skewed value
// can overflow the nominal height — the effect behind the histogram accuracy
// plateau on Zipfian data in paper Figure 3.
//
// Equi-height histograms are NOT mergeable (§3.5): bucket borders of two
// histograms generally disagree.

#ifndef LSMSTATS_SYNOPSIS_EQUI_HEIGHT_HISTOGRAM_H_
#define LSMSTATS_SYNOPSIS_EQUI_HEIGHT_HISTOGRAM_H_

#include <memory>
#include <vector>

#include "synopsis/builder.h"
#include "synopsis/synopsis.h"

namespace lsmstats {

class EquiHeightHistogram : public Synopsis {
 public:
  struct Bucket {
    // Inclusive right border, as a domain position.
    uint64_t right_position = 0;
    double count = 0.0;
  };

  EquiHeightHistogram(const ValueDomain& domain, size_t budget,
                      uint64_t start_position, std::vector<Bucket> buckets,
                      uint64_t total_records);

  SynopsisType type() const override {
    return SynopsisType::kEquiHeightHistogram;
  }
  const ValueDomain& domain() const override { return domain_; }
  double EstimateRange(int64_t lo, int64_t hi) const override;
  size_t ElementCount() const override { return buckets_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<EquiHeightHistogram>> DecodeFrom(
      Decoder* dec);

  const std::vector<Bucket>& buckets() const { return buckets_; }

 private:
  ValueDomain domain_;
  size_t budget_;
  // Inclusive left edge of the first bucket (the smallest position observed).
  uint64_t start_position_;
  std::vector<Bucket> buckets_;
  uint64_t total_records_;
};

class EquiHeightHistogramBuilder : public SynopsisBuilder {
 public:
  // `expected_records` fixes the bucket height: ceil(expected / budget).
  EquiHeightHistogramBuilder(const ValueDomain& domain, size_t budget,
                             uint64_t expected_records);

  void Add(int64_t value) override;
  std::unique_ptr<Synopsis> Finish() override;

 private:
  ValueDomain domain_;
  size_t budget_;
  uint64_t height_;
  uint64_t start_position_ = 0;
  uint64_t current_position_ = 0;
  uint64_t current_count_ = 0;
  uint64_t total_records_ = 0;
  bool has_values_ = false;
  std::vector<EquiHeightHistogram::Bucket> buckets_;
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_EQUI_HEIGHT_HISTOGRAM_H_
