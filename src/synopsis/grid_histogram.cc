#include "synopsis/grid_histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lsmstats {

namespace {

unsigned __int128 DomainLength(const ValueDomain& domain) {
  return static_cast<unsigned __int128>(1) << domain.log_length();
}

}  // namespace

GridHistogram::GridHistogram(const ValueDomain& domain0,
                             const ValueDomain& domain1, size_t budget)
    : domain0_(domain0), domain1_(domain1), budget_(budget) {
  LSMSTATS_CHECK(budget >= 4);
  cells_per_dim_ = static_cast<size_t>(std::sqrt(static_cast<double>(budget)));
  LSMSTATS_CHECK(cells_per_dim_ >= 2);
  // Never more cells than domain positions along either axis.
  for (const ValueDomain* d : {&domain0_, &domain1_}) {
    unsigned __int128 length = DomainLength(*d);
    if (length < cells_per_dim_) {
      cells_per_dim_ = static_cast<size_t>(length);
    }
  }
  counts_.assign(cells_per_dim_ * cells_per_dim_, 0.0);
}

size_t GridHistogram::CellOf(const ValueDomain& domain,
                             uint64_t position) const {
  unsigned __int128 width =
      (DomainLength(domain) + cells_per_dim_ - 1) / cells_per_dim_;
  return static_cast<size_t>(position / width);
}

std::pair<uint64_t, uint64_t> GridHistogram::CellRange(
    const ValueDomain& domain, size_t cell) const {
  unsigned __int128 width =
      (DomainLength(domain) + cells_per_dim_ - 1) / cells_per_dim_;
  unsigned __int128 first = width * cell;
  unsigned __int128 last = first + width - 1;
  unsigned __int128 max_pos = DomainLength(domain) - 1;
  if (last > max_pos) last = max_pos;
  return {static_cast<uint64_t>(first), static_cast<uint64_t>(last)};
}

double GridHistogram::AxisOverlap(const ValueDomain& domain, size_t cell,
                                  uint64_t lo_pos, uint64_t hi_pos) const {
  auto [first, last] = CellRange(domain, cell);
  uint64_t ov_lo = std::max(first, lo_pos);
  uint64_t ov_hi = std::min(last, hi_pos);
  if (ov_hi < ov_lo) return 0.0;
  if (ov_lo == first && ov_hi == last) return 1.0;
  return (static_cast<double>(ov_hi - ov_lo) + 1.0) /
         (static_cast<double>(last - first) + 1.0);
}

void GridHistogram::AddValue(int64_t v0, int64_t v1, double count) {
  LSMSTATS_DCHECK(domain0_.Contains(v0));
  LSMSTATS_DCHECK(domain1_.Contains(v1));
  size_t c0 = CellOf(domain0_, domain0_.Position(v0));
  size_t c1 = CellOf(domain1_, domain1_.Position(v1));
  counts_[c0 * cells_per_dim_ + c1] += count;
  total_records_ += static_cast<uint64_t>(count);
}

double GridHistogram::EstimateRange2D(int64_t lo0, int64_t hi0, int64_t lo1,
                                      int64_t hi1) const {
  if (hi0 < lo0 || hi1 < lo1) return 0.0;
  lo0 = std::max(lo0, domain0_.min_value());
  hi0 = std::min(hi0, domain0_.max_value());
  lo1 = std::max(lo1, domain1_.min_value());
  hi1 = std::min(hi1, domain1_.max_value());
  if (hi0 < lo0 || hi1 < lo1) return 0.0;
  uint64_t lo0_pos = domain0_.Position(lo0), hi0_pos = domain0_.Position(hi0);
  uint64_t lo1_pos = domain1_.Position(lo1), hi1_pos = domain1_.Position(hi1);
  size_t first0 = CellOf(domain0_, lo0_pos), last0 = CellOf(domain0_, hi0_pos);
  size_t first1 = CellOf(domain1_, lo1_pos), last1 = CellOf(domain1_, hi1_pos);

  double estimate = 0.0;
  for (size_t c0 = first0; c0 <= last0; ++c0) {
    double overlap0 = AxisOverlap(domain0_, c0, lo0_pos, hi0_pos);
    if (overlap0 == 0.0) continue;
    for (size_t c1 = first1; c1 <= last1; ++c1) {
      double overlap1 = AxisOverlap(domain1_, c1, lo1_pos, hi1_pos);
      if (overlap1 == 0.0) continue;
      estimate += counts_[c0 * cells_per_dim_ + c1] * overlap0 * overlap1;
    }
  }
  return estimate;
}

double GridHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  return EstimateRange2D(lo, hi, domain1_.min_value(), domain1_.max_value());
}

Status GridHistogram::MergeFrom(const GridHistogram& other) {
  if (!(domain0_ == other.domain0_) || !(domain1_ == other.domain1_) ||
      cells_per_dim_ != other.cells_per_dim_) {
    return Status::InvalidArgument(
        "grid histograms must share domains and cell structure");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_records_ += other.total_records_;
  return Status::OK();
}

void GridHistogram::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain0_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain0_.log_length()));
  enc->PutI64(domain1_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain1_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutVarint64(cells_per_dim_);
  for (double count : counts_) enc->PutDouble(count);
}

StatusOr<std::unique_ptr<GridHistogram>> GridHistogram::DecodeFrom(
    Decoder* dec) {
  int64_t min0, min1;
  uint8_t log0, log1;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min0));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log0));
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min1));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log1));
  if (log0 < 1 || log0 > 64 || log1 < 1 || log1 > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, cells;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&cells));
  if (budget < 4 || budget > (1ULL << 26)) {
    return Status::Corruption("bad grid budget");
  }
  if (cells > (1ULL << 13) || cells * cells > dec->remaining() / 8 + 1) {
    return Status::Corruption("grid size exceeds buffer");
  }
  auto grid = std::make_unique<GridHistogram>(
      ValueDomain(min0, log0), ValueDomain(min1, log1),
      static_cast<size_t>(budget));
  if (grid->cells_per_dim_ != cells) {
    return Status::Corruption("grid cell-count mismatch");
  }
  grid->total_records_ = total;
  for (double& count : grid->counts_) {
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&count));
  }
  return grid;
}

std::unique_ptr<Synopsis> GridHistogram::Clone() const {
  return std::make_unique<GridHistogram>(*this);
}

std::string GridHistogram::DebugString() const {
  return "Grid2D(" + std::to_string(cells_per_dim_) + "x" +
         std::to_string(cells_per_dim_) +
         ", total=" + std::to_string(total_records_) + ")";
}

}  // namespace lsmstats
