#include "synopsis/equi_width_histogram.h"

#include <algorithm>

#include "common/check.h"

namespace lsmstats {

namespace {

unsigned __int128 DomainLength(const ValueDomain& domain) {
  return static_cast<unsigned __int128>(1) << domain.log_length();
}

}  // namespace

EquiWidthHistogram::EquiWidthHistogram(const ValueDomain& domain,
                                       size_t budget)
    : domain_(domain), budget_(budget) {
  LSMSTATS_CHECK(budget >= 1);
  unsigned __int128 length = DomainLength(domain_);
  unsigned __int128 width = BucketWidth();
  size_t buckets = static_cast<size_t>((length + width - 1) / width);
  counts_.assign(buckets, 0.0);
}

unsigned __int128 EquiWidthHistogram::BucketWidth() const {
  unsigned __int128 length = DomainLength(domain_);
  return (length + budget_ - 1) / budget_;
}

size_t EquiWidthHistogram::BucketOf(uint64_t position) const {
  return static_cast<size_t>(position / BucketWidth());
}

std::pair<uint64_t, uint64_t> EquiWidthHistogram::BucketRange(
    size_t bucket) const {
  unsigned __int128 width = BucketWidth();
  unsigned __int128 first = width * bucket;
  unsigned __int128 last = first + width - 1;
  unsigned __int128 max_pos = DomainLength(domain_) - 1;
  if (last > max_pos) last = max_pos;
  return {static_cast<uint64_t>(first), static_cast<uint64_t>(last)};
}

void EquiWidthHistogram::AddValue(int64_t value, double count) {
  LSMSTATS_DCHECK(domain_.Contains(value));
  counts_[BucketOf(domain_.Position(value))] += count;
  total_records_ += static_cast<uint64_t>(count);
}

double EquiWidthHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  if (hi < lo) return 0.0;
  lo = std::max(lo, domain_.min_value());
  hi = std::min(hi, domain_.max_value());
  if (hi < lo) return 0.0;
  uint64_t lo_pos = domain_.Position(lo);
  uint64_t hi_pos = domain_.Position(hi);
  size_t lo_bucket = BucketOf(lo_pos);
  size_t hi_bucket = BucketOf(hi_pos);

  double estimate = 0.0;
  for (size_t b = lo_bucket; b <= hi_bucket; ++b) {
    auto [first, last] = BucketRange(b);
    uint64_t ov_lo = std::max(first, lo_pos);
    uint64_t ov_hi = std::min(last, hi_pos);
    if (ov_hi < ov_lo) continue;
    if (ov_lo == first && ov_hi == last) {
      estimate += counts_[b];
    } else {
      // Continuous-value assumption for partially overlapped buckets.
      double bucket_len = static_cast<double>(last - first) + 1.0;
      double overlap_len = static_cast<double>(ov_hi - ov_lo) + 1.0;
      estimate += counts_[b] * (overlap_len / bucket_len);
    }
  }
  return estimate;
}

Status EquiWidthHistogram::MergeFrom(const EquiWidthHistogram& other) {
  if (!(domain_ == other.domain_) || counts_.size() != other.counts_.size()) {
    return Status::InvalidArgument(
        "equi-width histograms must share domain and bucket structure");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_records_ += other.total_records_;
  return Status::OK();
}

void EquiWidthHistogram::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutVarint64(counts_.size());
  for (size_t b = 0; b < counts_.size(); ++b) {
    // One element = right border + count, the uniform element layout that
    // makes storage budgets comparable across synopsis types (§3.2).
    enc->PutU64(BucketRange(b).second);
    enc->PutDouble(counts_[b]);
  }
}

StatusOr<std::unique_ptr<EquiWidthHistogram>> EquiWidthHistogram::DecodeFrom(
    Decoder* dec) {
  int64_t min_value;
  uint8_t log_length;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min_value));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log_length));
  if (log_length < 1 || log_length > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, buckets;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&buckets));
  if (budget == 0) return Status::Corruption("zero histogram budget");
  if (budget > (1ULL << 26) || buckets > dec->remaining() / 16) {
    return Status::Corruption("histogram size exceeds buffer");
  }
  auto histogram = std::make_unique<EquiWidthHistogram>(
      ValueDomain(min_value, log_length), static_cast<size_t>(budget));
  if (histogram->counts_.size() != buckets) {
    return Status::Corruption("bucket count mismatch");
  }
  histogram->total_records_ = total;
  for (size_t b = 0; b < buckets; ++b) {
    uint64_t border;
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&border));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&histogram->counts_[b]));
  }
  return histogram;
}

std::unique_ptr<Synopsis> EquiWidthHistogram::Clone() const {
  return std::make_unique<EquiWidthHistogram>(*this);
}

std::string EquiWidthHistogram::DebugString() const {
  return "EquiWidth(buckets=" + std::to_string(counts_.size()) +
         ", total=" + std::to_string(total_records_) + ")";
}

EquiWidthHistogramBuilder::EquiWidthHistogramBuilder(
    const ValueDomain& domain, size_t budget)
    : histogram_(std::make_unique<EquiWidthHistogram>(domain, budget)) {}

void EquiWidthHistogramBuilder::Add(int64_t value) {
  histogram_->AddValue(value, 1.0);
}

std::unique_ptr<Synopsis> EquiWidthHistogramBuilder::Finish() {
  return std::move(histogram_);
}

}  // namespace lsmstats
