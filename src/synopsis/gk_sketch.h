// Greenwald-Khanna ε-approximate quantile sketch.
//
// Implements the paper's §5 future-work direction: statistics on attributes
// WITHOUT an index-imposed sort order. GK maintains a compressed set of
// tuples (value, g, Δ) such that any rank query is answered within εN, in
// one pass over an arbitrarily-ordered stream and O((1/ε) log εN) space
// [Greenwald & Khanna, SIGMOD'01].
//
// As a synopsis, a range cardinality [lo, hi] is estimated as
// rank(hi⁺) − rank(lo⁻), each within εN, so the estimate is within 2εN.
// GK summaries are mergeable (concatenate tuple lists, re-compress; the
// error grows to the max of the inputs' ε plus compression slack), which
// slots them into the framework's mergeable-synopsis machinery.
//
// The sketch is exposed through the same Synopsis/SynopsisBuilder interfaces
// as the paper's three types; unlike them its builder accepts values in ANY
// order. The element budget maps to the compression threshold: the sketch is
// compressed to at most `budget` tuples whenever it doubles past it.

#ifndef LSMSTATS_SYNOPSIS_GK_SKETCH_H_
#define LSMSTATS_SYNOPSIS_GK_SKETCH_H_

#include <memory>
#include <vector>

#include "synopsis/builder.h"
#include "synopsis/synopsis.h"

namespace lsmstats {

class GKSketch : public Synopsis {
 public:
  struct Tuple {
    int64_t value = 0;
    // Number of observations covered by this tuple beyond the previous one.
    double g = 0;
    // Uncertainty of this tuple's rank.
    double delta = 0;
  };

  GKSketch(const ValueDomain& domain, size_t budget,
           std::vector<Tuple> tuples, uint64_t total_records);

  SynopsisType type() const override { return SynopsisType::kGKQuantile; }
  const ValueDomain& domain() const override { return domain_; }
  double EstimateRange(int64_t lo, int64_t hi) const override;
  size_t ElementCount() const override { return tuples_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<GKSketch>> DecodeFrom(Decoder* dec);

  // Estimated number of records with value <= v.
  double EstimateRank(int64_t v) const;

  // Folds `other` in: tuple lists are merged by value and re-compressed to
  // the budget.
  [[nodiscard]] Status MergeFrom(const GKSketch& other);

  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  void Compress();

  ValueDomain domain_;
  size_t budget_;
  std::vector<Tuple> tuples_;  // ascending by value
  uint64_t total_records_;
};

// One-pass builder over an arbitrarily-ordered value stream.
class GKSketchBuilder : public SynopsisBuilder {
 public:
  GKSketchBuilder(const ValueDomain& domain, size_t budget);

  // Values may arrive in ANY order (this is the point of the sketch).
  void Add(int64_t value) override;
  std::unique_ptr<Synopsis> Finish() override;

 private:
  ValueDomain domain_;
  size_t budget_;
  // Buffered insertions are merged into the tuple list in sorted batches;
  // this keeps Add() amortized O(log n) without per-item list surgery.
  std::vector<int64_t> buffer_;
  std::vector<GKSketch::Tuple> tuples_;
  uint64_t total_records_ = 0;

  void FlushBuffer();
  void Compress();
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_GK_SKETCH_H_
