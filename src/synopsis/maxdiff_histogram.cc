#include "synopsis/maxdiff_histogram.h"

#include <algorithm>

#include "common/check.h"

namespace lsmstats {

MaxDiffHistogram::MaxDiffHistogram(const ValueDomain& domain, size_t budget,
                                   std::vector<Bucket> buckets,
                                   uint64_t total_records)
    : domain_(domain),
      budget_(budget),
      buckets_(std::move(buckets)),
      total_records_(total_records) {
  LSMSTATS_CHECK(budget >= 1);
#ifndef NDEBUG
  // Same boundary invariant as EquiHeightHistogram: strictly increasing
  // right borders, non-negative per-bucket mass.
  for (size_t i = 1; i < buckets_.size(); ++i) {
    LSMSTATS_DCHECK_GT(buckets_[i].right_position,
                       buckets_[i - 1].right_position);
  }
#endif
}

std::unique_ptr<MaxDiffHistogram> MaxDiffHistogram::Build(
    const ValueDomain& domain, size_t budget,
    const std::vector<std::pair<uint64_t, uint64_t>>& position_frequencies) {
  if (position_frequencies.empty()) {
    return std::make_unique<MaxDiffHistogram>(domain, budget,
                                              std::vector<Bucket>{}, 0);
  }
  const size_t n = position_frequencies.size();
  // Area of value i = spread_i x frequency_i, with the spread of the last
  // value taken as 1 (Poosala's convention for the final element).
  // Boundaries go after the B-1 largest |area_{i+1} - area_i|.
  std::vector<double> area(n);
  for (size_t i = 0; i < n; ++i) {
    uint64_t spread = i + 1 < n ? position_frequencies[i + 1].first -
                                      position_frequencies[i].first
                                : 1;
    area[i] = static_cast<double>(spread) *
              static_cast<double>(position_frequencies[i].second);
  }
  std::vector<std::pair<double, size_t>> diffs;  // (diff, boundary after i)
  diffs.reserve(n - 1);
  for (size_t i = 0; i + 1 < n; ++i) {
    diffs.push_back({std::abs(area[i + 1] - area[i]), i});
  }
  size_t boundaries = std::min(budget - 1, diffs.size());
  std::partial_sort(diffs.begin(),
                    diffs.begin() + static_cast<ptrdiff_t>(boundaries),
                    diffs.end(), std::greater<>());
  std::vector<size_t> cut_after(boundaries);
  for (size_t b = 0; b < boundaries; ++b) cut_after[b] = diffs[b].second;
  std::sort(cut_after.begin(), cut_after.end());

  std::vector<Bucket> buckets;
  buckets.reserve(boundaries + 1);
  uint64_t total = 0;
  double bucket_count = 0;
  uint64_t bucket_left = position_frequencies.front().first;
  size_t next_cut = 0;
  for (size_t i = 0; i < n; ++i) {
    bucket_count += static_cast<double>(position_frequencies[i].second);
    total += position_frequencies[i].second;
    bool close = i + 1 == n || (next_cut < cut_after.size() &&
                                cut_after[next_cut] == i);
    if (close) {
      if (next_cut < cut_after.size() && cut_after[next_cut] == i) {
        ++next_cut;
      }
      buckets.push_back(
          {bucket_left, position_frequencies[i].first, bucket_count});
      bucket_count = 0;
      if (i + 1 < n) bucket_left = position_frequencies[i + 1].first;
    }
  }
  return std::make_unique<MaxDiffHistogram>(domain, budget,
                                            std::move(buckets), total);
}

double EstimateExtentBuckets(const ValueDomain& domain,
                             const std::vector<MaxDiffHistogram::Bucket>& b,
                             int64_t lo, int64_t hi) {
  if (hi < lo || b.empty()) return 0.0;
  lo = std::max(lo, domain.min_value());
  hi = std::min(hi, domain.max_value());
  if (hi < lo) return 0.0;
  uint64_t lo_pos = domain.Position(lo);
  uint64_t hi_pos = domain.Position(hi);

  double estimate = 0.0;
  auto it = std::lower_bound(b.begin(), b.end(), lo_pos,
                             [](const MaxDiffHistogram::Bucket& bucket,
                                uint64_t pos) {
                               return bucket.right_position < pos;
                             });
  for (; it != b.end(); ++it) {
    if (it->left_position > hi_pos) break;
    uint64_t ov_lo = std::max(it->left_position, lo_pos);
    uint64_t ov_hi = std::min(it->right_position, hi_pos);
    if (ov_hi < ov_lo) continue;
    if (ov_lo == it->left_position && ov_hi == it->right_position) {
      estimate += it->count;
    } else {
      double bucket_len =
          static_cast<double>(it->right_position - it->left_position) + 1.0;
      double overlap_len = static_cast<double>(ov_hi - ov_lo) + 1.0;
      estimate += it->count * (overlap_len / bucket_len);
    }
  }
  return estimate;
}

double MaxDiffHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  return EstimateExtentBuckets(domain_, buckets_, lo, hi);
}

void MaxDiffHistogram::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutVarint64(buckets_.size());
  for (const Bucket& b : buckets_) {
    enc->PutU64(b.left_position);
    enc->PutU64(b.right_position);
    enc->PutDouble(b.count);
  }
}

StatusOr<std::unique_ptr<MaxDiffHistogram>> MaxDiffHistogram::DecodeFrom(
    Decoder* dec) {
  int64_t min_value;
  uint8_t log_length;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min_value));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log_length));
  if (log_length < 1 || log_length > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, count;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&count));
  if (budget == 0) return Status::Corruption("zero histogram budget");
  if (budget > (1ULL << 26) || count > dec->remaining() / 24) {
    return Status::Corruption("histogram size exceeds buffer");
  }
  std::vector<Bucket> buckets(count);
  for (size_t i = 0; i < buckets.size(); ++i) {
    Bucket& b = buckets[i];
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&b.left_position));
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&b.right_position));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&b.count));
    // Reject corrupt boundaries before construction, which DCHECKs the
    // same invariant on internal paths.
    if (b.right_position < b.left_position) {
      return Status::Corruption("histogram bucket borders inverted");
    }
    if (i > 0 && b.right_position <= buckets[i - 1].right_position) {
      return Status::Corruption("histogram borders not increasing");
    }
  }
  return std::make_unique<MaxDiffHistogram>(
      ValueDomain(min_value, log_length), static_cast<size_t>(budget),
      std::move(buckets), total);
}

std::unique_ptr<Synopsis> MaxDiffHistogram::Clone() const {
  return std::make_unique<MaxDiffHistogram>(*this);
}

std::string MaxDiffHistogram::DebugString() const {
  return "MaxDiff(buckets=" + std::to_string(buckets_.size()) +
         ", total=" + std::to_string(total_records_) + ")";
}

// ---------------------------------------------------------------- VOptimal

VOptimalHistogram::VOptimalHistogram(const ValueDomain& domain, size_t budget,
                                     std::vector<Bucket> buckets,
                                     uint64_t total_records)
    : domain_(domain),
      budget_(budget),
      buckets_(std::move(buckets)),
      total_records_(total_records) {
  LSMSTATS_CHECK(budget >= 1);
}

std::unique_ptr<VOptimalHistogram> VOptimalHistogram::Build(
    const ValueDomain& domain, size_t budget,
    const std::vector<std::pair<uint64_t, uint64_t>>& position_frequencies) {
  const size_t n = position_frequencies.size();
  if (n == 0) {
    return std::make_unique<VOptimalHistogram>(domain, budget,
                                               std::vector<Bucket>{}, 0);
  }
  const size_t b = std::min(budget, n);

  // Prefix sums of f and f^2 for O(1) within-bucket SSE:
  // sse(i..j) = sum(f^2) - sum(f)^2 / count.
  std::vector<double> sum(n + 1, 0.0), sum_sq(n + 1, 0.0);
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    double f = static_cast<double>(position_frequencies[i].second);
    sum[i + 1] = sum[i] + f;
    sum_sq[i + 1] = sum_sq[i] + f * f;
    total += position_frequencies[i].second;
  }
  auto sse = [&](size_t i, size_t j) {  // values i..j inclusive, 0-based
    double s = sum[j + 1] - sum[i];
    double sq = sum_sq[j + 1] - sum_sq[i];
    double cnt = static_cast<double>(j - i + 1);
    return sq - s * s / cnt;
  };

  // DP: error[k][i] = best SSE for the first i values in k buckets.
  // O(n^2 * b) time, O(n * b) space for boundary backtracking.
  constexpr double kInf = 1e300;
  std::vector<double> previous(n + 1, kInf), current(n + 1, kInf);
  std::vector<std::vector<uint32_t>> split(
      b + 1, std::vector<uint32_t>(n + 1, 0));
  previous[0] = 0.0;
  for (size_t k = 1; k <= b; ++k) {
    current.assign(n + 1, kInf);
    for (size_t i = k; i <= n; ++i) {
      for (size_t j = k - 1; j < i; ++j) {
        if (previous[j] >= kInf) continue;
        double candidate = previous[j] + sse(j, i - 1);
        if (candidate < current[i]) {
          current[i] = candidate;
          split[k][i] = static_cast<uint32_t>(j);
        }
      }
    }
    std::swap(previous, current);
  }

  // Backtrack bucket boundaries.
  std::vector<size_t> starts;  // start index of each bucket, reversed
  size_t end = n;
  for (size_t k = b; k >= 1 && end > 0; --k) {
    size_t start = split[k][end];
    starts.push_back(start);
    end = start;
  }
  std::reverse(starts.begin(), starts.end());

  std::vector<Bucket> buckets;
  buckets.reserve(starts.size());
  for (size_t s = 0; s < starts.size(); ++s) {
    size_t first = starts[s];
    size_t last = s + 1 < starts.size() ? starts[s + 1] - 1 : n - 1;
    double count = sum[last + 1] - sum[first];
    buckets.push_back({position_frequencies[first].first,
                       position_frequencies[last].first, count});
  }
  return std::make_unique<VOptimalHistogram>(domain, budget,
                                             std::move(buckets), total);
}

double VOptimalHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  return EstimateExtentBuckets(domain_, buckets_, lo, hi);
}

void VOptimalHistogram::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutVarint64(buckets_.size());
  for (const Bucket& bucket : buckets_) {
    enc->PutU64(bucket.left_position);
    enc->PutU64(bucket.right_position);
    enc->PutDouble(bucket.count);
  }
}

StatusOr<std::unique_ptr<VOptimalHistogram>> VOptimalHistogram::DecodeFrom(
    Decoder* dec) {
  int64_t min_value;
  uint8_t log_length;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min_value));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log_length));
  if (log_length < 1 || log_length > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, count;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&count));
  if (budget == 0) return Status::Corruption("zero histogram budget");
  if (budget > (1ULL << 26) || count > dec->remaining() / 24) {
    return Status::Corruption("histogram size exceeds buffer");
  }
  std::vector<Bucket> buckets(count);
  for (auto& bucket : buckets) {
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&bucket.left_position));
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&bucket.right_position));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&bucket.count));
  }
  return std::make_unique<VOptimalHistogram>(
      ValueDomain(min_value, log_length), static_cast<size_t>(budget),
      std::move(buckets), total);
}

std::unique_ptr<Synopsis> VOptimalHistogram::Clone() const {
  return std::make_unique<VOptimalHistogram>(*this);
}

std::string VOptimalHistogram::DebugString() const {
  return "VOptimal(buckets=" + std::to_string(buckets_.size()) +
         ", total=" + std::to_string(total_records_) + ")";
}

}  // namespace lsmstats
