// Equi-width histogram synopsis.
//
// The bucket width is fixed up front from the domain length and the bucket
// budget (the histogram "invariant", paper §3.2), so buckets can be populated
// left-to-right as records arrive from the sorted stream. Equi-width
// histograms merge naturally: two histograms over the same domain and budget
// combine by adding bucket counts (§3.5).

#ifndef LSMSTATS_SYNOPSIS_EQUI_WIDTH_HISTOGRAM_H_
#define LSMSTATS_SYNOPSIS_EQUI_WIDTH_HISTOGRAM_H_

#include <memory>
#include <vector>

#include "synopsis/builder.h"
#include "synopsis/synopsis.h"

namespace lsmstats {

class EquiWidthHistogram : public Synopsis {
 public:
  // An empty histogram (all counts zero) over `domain` with `budget` buckets.
  EquiWidthHistogram(const ValueDomain& domain, size_t budget);

  SynopsisType type() const override {
    return SynopsisType::kEquiWidthHistogram;
  }
  const ValueDomain& domain() const override { return domain_; }
  double EstimateRange(int64_t lo, int64_t hi) const override;
  size_t ElementCount() const override { return counts_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<EquiWidthHistogram>> DecodeFrom(
      Decoder* dec);

  // Adds `count` records at `value`. Used by the builder and by tests.
  void AddValue(int64_t value, double count);

  // Adds `other`'s counts into this histogram. Requires identical domain and
  // bucket structure.
  [[nodiscard]] Status MergeFrom(const EquiWidthHistogram& other);

  // Bucket index of a domain position.
  size_t BucketOf(uint64_t position) const;
  double bucket_count(size_t bucket) const { return counts_[bucket]; }

 private:
  // Width of every bucket in domain positions. The domain length can be
  // 2^64, hence the 128-bit type.
  unsigned __int128 BucketWidth() const;
  // Inclusive position range covered by `bucket`.
  std::pair<uint64_t, uint64_t> BucketRange(size_t bucket) const;

  ValueDomain domain_;
  size_t budget_;
  std::vector<double> counts_;
  uint64_t total_records_ = 0;
};

class EquiWidthHistogramBuilder : public SynopsisBuilder {
 public:
  EquiWidthHistogramBuilder(const ValueDomain& domain, size_t budget);

  void Add(int64_t value) override;
  std::unique_ptr<Synopsis> Finish() override;

 private:
  std::unique_ptr<EquiWidthHistogram> histogram_;
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_EQUI_WIDTH_HISTOGRAM_H_
