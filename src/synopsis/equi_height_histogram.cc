#include "synopsis/equi_height_histogram.h"

#include <algorithm>

#include "common/check.h"

namespace lsmstats {

EquiHeightHistogram::EquiHeightHistogram(const ValueDomain& domain,
                                         size_t budget,
                                         uint64_t start_position,
                                         std::vector<Bucket> buckets,
                                         uint64_t total_records)
    : domain_(domain),
      budget_(budget),
      start_position_(start_position),
      buckets_(std::move(buckets)),
      total_records_(total_records) {
  LSMSTATS_CHECK(budget >= 1);
#ifndef NDEBUG
  // Bucket borders must be strictly increasing and start at or after the
  // histogram's start position, or EstimateRange's lower_bound walk and the
  // per-bucket interpolation both silently misattribute mass.
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (i == 0) {
      LSMSTATS_DCHECK_GE(buckets_[0].right_position, start_position_);
    } else {
      LSMSTATS_DCHECK_GT(buckets_[i].right_position,
                         buckets_[i - 1].right_position);
    }
    LSMSTATS_DCHECK_GE(buckets_[i].count, 0.0);
  }
#endif
}

double EquiHeightHistogram::EstimateRange(int64_t lo, int64_t hi) const {
  if (hi < lo || buckets_.empty()) return 0.0;
  lo = std::max(lo, domain_.min_value());
  hi = std::min(hi, domain_.max_value());
  if (hi < lo) return 0.0;
  uint64_t lo_pos = domain_.Position(lo);
  uint64_t hi_pos = domain_.Position(hi);

  double estimate = 0.0;
  uint64_t left = start_position_;
  // Find the first bucket whose right border is >= lo_pos.
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), lo_pos,
      [](const Bucket& b, uint64_t pos) { return b.right_position < pos; });
  if (it != buckets_.begin()) left = std::prev(it)->right_position + 1;
  for (; it != buckets_.end(); ++it) {
    if (it->right_position < left) continue;  // degenerate, defensive
    uint64_t ov_lo = std::max(left, lo_pos);
    uint64_t ov_hi = std::min(it->right_position, hi_pos);
    if (ov_lo > hi_pos) break;
    if (ov_hi >= ov_lo) {
      if (ov_lo == left && ov_hi == it->right_position) {
        estimate += it->count;
      } else {
        // Continuous-value assumption within the bucket.
        double bucket_len =
            static_cast<double>(it->right_position - left) + 1.0;
        double overlap_len = static_cast<double>(ov_hi - ov_lo) + 1.0;
        estimate += it->count * (overlap_len / bucket_len);
      }
    }
    left = it->right_position + 1;
  }
  return estimate;
}

void EquiHeightHistogram::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutU64(start_position_);
  enc->PutVarint64(buckets_.size());
  for (const Bucket& b : buckets_) {
    enc->PutU64(b.right_position);
    enc->PutDouble(b.count);
  }
}

StatusOr<std::unique_ptr<EquiHeightHistogram>> EquiHeightHistogram::DecodeFrom(
    Decoder* dec) {
  int64_t min_value;
  uint8_t log_length;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min_value));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log_length));
  if (log_length < 1 || log_length > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, start, count;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&start));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&count));
  if (budget == 0) return Status::Corruption("zero histogram budget");
  if (budget > (1ULL << 26) || count > dec->remaining() / 16) {
    return Status::Corruption("histogram size exceeds buffer");
  }
  std::vector<Bucket> buckets(count);
  for (size_t i = 0; i < buckets.size(); ++i) {
    Bucket& b = buckets[i];
    LSMSTATS_RETURN_IF_ERROR(dec->GetU64(&b.right_position));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&b.count));
    // Reject corrupt boundaries here so construction (which DCHECKs the
    // same invariant) only ever sees well-formed buckets.
    if (i > 0 && b.right_position <= buckets[i - 1].right_position) {
      return Status::Corruption("histogram borders not increasing");
    }
    if (!(b.count >= 0.0)) {
      return Status::Corruption("negative histogram bucket count");
    }
  }
  if (!buckets.empty() && buckets.front().right_position < start) {
    return Status::Corruption("histogram borders precede start position");
  }
  return std::make_unique<EquiHeightHistogram>(
      ValueDomain(min_value, log_length), static_cast<size_t>(budget), start,
      std::move(buckets), total);
}

std::unique_ptr<Synopsis> EquiHeightHistogram::Clone() const {
  return std::make_unique<EquiHeightHistogram>(*this);
}

std::string EquiHeightHistogram::DebugString() const {
  return "EquiHeight(buckets=" + std::to_string(buckets_.size()) +
         ", total=" + std::to_string(total_records_) + ")";
}

EquiHeightHistogramBuilder::EquiHeightHistogramBuilder(
    const ValueDomain& domain, size_t budget, uint64_t expected_records)
    : domain_(domain), budget_(budget) {
  LSMSTATS_CHECK(budget >= 1);
  height_ = std::max<uint64_t>(
      1, (expected_records + budget - 1) / budget);
}

void EquiHeightHistogramBuilder::Add(int64_t value) {
  LSMSTATS_DCHECK(domain_.Contains(value));
  uint64_t pos = domain_.Position(value);
  if (!has_values_) {
    has_values_ = true;
    start_position_ = pos;
    current_position_ = pos;
  }
  LSMSTATS_DCHECK_GE(pos, current_position_);
  // Close at a value boundary once the bucket reaches the target height —
  // but never open more buckets than the budget allows (the stream can be
  // longer than expected_records when a merge reconciles less than assumed).
  if (pos != current_position_ && current_count_ >= height_ &&
      buckets_.size() + 1 < budget_) {
    // Close the bucket at a value boundary so duplicates never split.
    buckets_.push_back({current_position_, static_cast<double>(current_count_)});
    current_count_ = 0;
  }
  current_position_ = pos;
  ++current_count_;
  ++total_records_;
}

std::unique_ptr<Synopsis> EquiHeightHistogramBuilder::Finish() {
  if (current_count_ > 0) {
    buckets_.push_back({current_position_, static_cast<double>(current_count_)});
  }
  return std::make_unique<EquiHeightHistogram>(
      domain_, budget_, start_position_, std::move(buckets_), total_records_);
}

}  // namespace lsmstats
