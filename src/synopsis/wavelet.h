// Haar-wavelet synopsis (paper §3.2, Appendix B).
//
// The synopsis stores the top-B coefficients (by L2-normalized magnitude) of
// the discrete Haar decomposition of a signal over the attribute's
// power-of-two value domain. Two signal encodings are supported:
//
//  * kPrefixSum (the paper's choice): the encoded signal at position p is the
//    running prefix sum of record frequencies, P[p] = sum_{q<=p} f(q). A
//    range cardinality [lo, hi] is then W(hi) - W(lo-1), two O(log D)
//    root-to-leaf reconstructions (§3.6). The prefix sum is dense, which is
//    why it approximates range queries far better than raw frequencies.
//  * kRawFrequency: the classical encoding of the raw frequency vector, kept
//    as the baseline for the prefix-sum ablation experiment. Range
//    cardinalities are exact range-sums over the error tree, O(B).
//
// Error-tree numbering: index 0 is the overall average; detail node i >= 1
// sits at depth bit_width(i)-1 and covers the dyadic interval of length
// 2^(logD - depth) starting at (i - 2^depth) << (logD - depth). A detail
// coefficient c adds +c to the right half of its support and -c to the left
// half (the paper's Appendix B sign convention: detail = (right - left)/2).
//
// Wavelets are mergeable (§3.5): the transform is linear, so coefficient-wise
// addition followed by re-thresholding combines two synopses.

#ifndef LSMSTATS_SYNOPSIS_WAVELET_H_
#define LSMSTATS_SYNOPSIS_WAVELET_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "synopsis/builder.h"
#include "synopsis/synopsis.h"

namespace lsmstats {

struct WaveletCoefficient {
  // Error-tree index; 0 is the overall average.
  uint64_t index = 0;
  // Unnormalized coefficient value.
  double value = 0.0;
};

enum class WaveletEncoding : uint8_t {
  kPrefixSum = 0,
  kRawFrequency = 1,
};

// L2 importance of a coefficient: |value| * sqrt(support length). This is the
// normalization under which greedy top-B selection is provably optimal for
// the L2 reconstruction error (paper Appendix B).
double WaveletImportance(uint64_t index, double value, int log_domain);

// Pre-order comparison of two error-tree indices (paper §3.2 serializes
// coefficients "using a binary tree pre-order"). Index 0 precedes everything.
bool WaveletPreOrderLess(uint64_t a, uint64_t b);

class WaveletSynopsis : public Synopsis {
 public:
  WaveletSynopsis(const ValueDomain& domain, size_t budget,
                  WaveletEncoding encoding,
                  std::vector<WaveletCoefficient> coefficients,
                  uint64_t total_records);

  SynopsisType type() const override { return SynopsisType::kWavelet; }
  const ValueDomain& domain() const override { return domain_; }
  double EstimateRange(int64_t lo, int64_t hi) const override;
  size_t ElementCount() const override { return coefficients_.size(); }
  size_t Budget() const override { return budget_; }
  uint64_t TotalRecords() const override { return total_records_; }
  void EncodeTo(Encoder* enc) const override;
  std::unique_ptr<Synopsis> Clone() const override;
  std::string DebugString() const override;

  [[nodiscard]]
  static StatusOr<std::unique_ptr<WaveletSynopsis>> DecodeFrom(Decoder* dec);

  WaveletEncoding encoding() const { return encoding_; }

  // Reconstructs the encoded signal's value at a domain position: one
  // root-to-leaf traversal of the error tree (§3.6).
  double ReconstructPoint(uint64_t position) const;

  // Adds `other`'s coefficients into this synopsis and re-thresholds to the
  // budget. Requires identical domain and encoding.
  [[nodiscard]] Status MergeFrom(const WaveletSynopsis& other);

  // Coefficients in error-tree pre-order.
  std::vector<WaveletCoefficient> CoefficientsInPreOrder() const;

 private:
  // Sum of the encoded signal over positions [lo, hi] in O(#coefficients);
  // used by the raw-frequency encoding.
  double RangeSum(uint64_t lo, uint64_t hi) const;

  void Threshold(size_t budget);

  ValueDomain domain_;
  size_t budget_;
  WaveletEncoding encoding_;
  std::unordered_map<uint64_t, double> coefficients_;
  uint64_t total_records_;
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_WAVELET_H_
