#include "synopsis/synopsis.h"

#include "synopsis/equi_height_histogram.h"
#include "synopsis/gk_sketch.h"
#include "synopsis/grid_histogram.h"
#include "synopsis/maxdiff_histogram.h"
#include "synopsis/equi_width_histogram.h"
#include "synopsis/wavelet.h"

namespace lsmstats {

const char* SynopsisTypeToString(SynopsisType type) {
  switch (type) {
    case SynopsisType::kNone:
      return "NoStats";
    case SynopsisType::kEquiWidthHistogram:
      return "EquiWidth";
    case SynopsisType::kEquiHeightHistogram:
      return "EquiHeight";
    case SynopsisType::kWavelet:
      return "Wavelet";
    case SynopsisType::kGKQuantile:
      return "GKQuantile";
    case SynopsisType::kMaxDiff:
      return "MaxDiff";
    case SynopsisType::kGrid2D:
      return "Grid2D";
    case SynopsisType::kVOptimal:
      return "VOptimal";
  }
  return "unknown";
}

bool SynopsisTypeIsMergeable(SynopsisType type) {
  switch (type) {
    case SynopsisType::kEquiWidthHistogram:
    case SynopsisType::kWavelet:
    case SynopsisType::kGKQuantile:
    case SynopsisType::kGrid2D:
      return true;
    case SynopsisType::kNone:
    case SynopsisType::kEquiHeightHistogram:
    case SynopsisType::kMaxDiff:
    case SynopsisType::kVOptimal:
      return false;
  }
  return false;
}

StatusOr<std::unique_ptr<Synopsis>> DecodeSynopsis(Decoder* dec) {
  uint8_t type;
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&type));
  switch (static_cast<SynopsisType>(type)) {
    case SynopsisType::kEquiWidthHistogram: {
      auto result = EquiWidthHistogram::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kEquiHeightHistogram: {
      auto result = EquiHeightHistogram::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kWavelet: {
      auto result = WaveletSynopsis::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kGKQuantile: {
      auto result = GKSketch::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kMaxDiff: {
      auto result = MaxDiffHistogram::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kGrid2D: {
      auto result = GridHistogram::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kVOptimal: {
      auto result = VOptimalHistogram::DecodeFrom(dec);
      LSMSTATS_RETURN_IF_ERROR(result.status());
      return std::unique_ptr<Synopsis>(std::move(result).value());
    }
    case SynopsisType::kNone:
      break;
  }
  return Status::Corruption("unknown synopsis type tag");
}

StatusOr<std::unique_ptr<Synopsis>> MergeSynopses(const Synopsis& a,
                                                  const Synopsis& b,
                                                  size_t budget) {
  if (a.type() != b.type()) {
    return Status::InvalidArgument("cannot merge different synopsis types");
  }
  if (!SynopsisTypeIsMergeable(a.type())) {
    return Status::FailedPrecondition(
        std::string(SynopsisTypeToString(a.type())) +
        " synopses are not mergeable");
  }
  if (!(a.domain() == b.domain())) {
    return Status::InvalidArgument("cannot merge synopses over different "
                                   "value domains");
  }
  switch (a.type()) {
    case SynopsisType::kEquiWidthHistogram: {
      auto merged = std::make_unique<EquiWidthHistogram>(
          static_cast<const EquiWidthHistogram&>(a));
      LSMSTATS_RETURN_IF_ERROR(
          merged->MergeFrom(static_cast<const EquiWidthHistogram&>(b)));
      (void)budget;  // Bucket structure is fixed by the domain and budget.
      return std::unique_ptr<Synopsis>(std::move(merged));
    }
    case SynopsisType::kWavelet: {
      auto merged = std::make_unique<WaveletSynopsis>(
          static_cast<const WaveletSynopsis&>(a));
      LSMSTATS_RETURN_IF_ERROR(
          merged->MergeFrom(static_cast<const WaveletSynopsis&>(b)));
      return std::unique_ptr<Synopsis>(std::move(merged));
    }
    case SynopsisType::kGKQuantile: {
      auto merged =
          std::make_unique<GKSketch>(static_cast<const GKSketch&>(a));
      LSMSTATS_RETURN_IF_ERROR(
          merged->MergeFrom(static_cast<const GKSketch&>(b)));
      return std::unique_ptr<Synopsis>(std::move(merged));
    }
    case SynopsisType::kGrid2D: {
      auto merged = std::make_unique<GridHistogram>(
          static_cast<const GridHistogram&>(a));
      LSMSTATS_RETURN_IF_ERROR(
          merged->MergeFrom(static_cast<const GridHistogram&>(b)));
      return std::unique_ptr<Synopsis>(std::move(merged));
    }
    default:
      return Status::Internal("unreachable");
  }
}

}  // namespace lsmstats
