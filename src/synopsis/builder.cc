#include "synopsis/builder.h"

#include "synopsis/equi_height_histogram.h"
#include "synopsis/equi_width_histogram.h"
#include "synopsis/gk_sketch.h"
#include "synopsis/wavelet_builder.h"

namespace lsmstats {

std::unique_ptr<SynopsisBuilder> CreateSynopsisBuilder(
    const SynopsisConfig& config, uint64_t expected_records) {
  switch (config.type) {
    case SynopsisType::kNone:
      return nullptr;
    case SynopsisType::kEquiWidthHistogram:
      return std::make_unique<EquiWidthHistogramBuilder>(config.domain,
                                                         config.budget);
    case SynopsisType::kEquiHeightHistogram:
      return std::make_unique<EquiHeightHistogramBuilder>(
          config.domain, config.budget, expected_records);
    case SynopsisType::kWavelet:
      return std::make_unique<StreamingWaveletBuilder>(config.domain,
                                                       config.budget);
    case SynopsisType::kGKQuantile:
      return std::make_unique<GKSketchBuilder>(config.domain, config.budget);
    case SynopsisType::kMaxDiff:
      // MaxDiff needs the complete aggregate up front (§2); it has no
      // streaming builder and is produced by the offline ANALYZE job only.
      return nullptr;
    case SynopsisType::kGrid2D:
      // Built by the composite-key collector, which feeds value PAIRS; the
      // scalar builder interface does not apply.
      return nullptr;
    case SynopsisType::kVOptimal:
      // O(V^2 B) dynamic program over the complete aggregate; offline
      // (ANALYZE) only — exactly why §1 excludes it from the framework.
      return nullptr;
  }
  return nullptr;
}

}  // namespace lsmstats
