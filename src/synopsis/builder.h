// Streaming synopsis builders (paper §3.2).
//
// A builder consumes one attribute value per record from a key-sorted
// component stream (values arrive in non-decreasing order — the order is
// imposed by the index, which is what makes linear-time construction
// possible) and produces a synopsis at the end. The statistics collector
// instantiates two builders per component: one for regular records and one
// for anti-matter records (§3.3).

#ifndef LSMSTATS_SYNOPSIS_BUILDER_H_
#define LSMSTATS_SYNOPSIS_BUILDER_H_

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "synopsis/synopsis.h"

namespace lsmstats {

struct SynopsisConfig {
  SynopsisType type = SynopsisType::kNone;
  // Element budget: histogram buckets or wavelet coefficients.
  size_t budget = 256;
  // The attribute's (power-of-two) value domain.
  ValueDomain domain = ValueDomain::ForType(FieldType::kInt64);
};

class SynopsisBuilder {
 public:
  virtual ~SynopsisBuilder() = default;

  // Feeds one value. Values must be non-decreasing and inside the domain.
  virtual void Add(int64_t value) = 0;

  // Completes the build. The builder must not be reused afterwards.
  virtual std::unique_ptr<Synopsis> Finish() = 0;
};

// `expected_records` is the input-stream length the equi-height histogram
// needs up front to fix its bucket height (paper §3.2); the other types
// ignore it. Returns nullptr for SynopsisType::kNone.
std::unique_ptr<SynopsisBuilder> CreateSynopsisBuilder(
    const SynopsisConfig& config, uint64_t expected_records);

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_BUILDER_H_
