// Streaming prefix-sum Haar wavelet decomposition (paper Algorithm 1).
//
// The classical decomposition materializes O(D) arrays over the value domain
// D — hopeless for 64-bit domains, and wasteful for the sparse frequency
// signals cardinality estimation sees. This builder consumes the sorted
// record stream one value at a time and produces exactly the top-B
// coefficients of the decomposition of the *prefix-sum* signal, in
// O(n log D + n log B) time and O(log D + B) space:
//
//  * avgStack: a stack of current per-level average coefficients; levels are
//    strictly decreasing toward the top, and the covered dyadic intervals
//    tile the prefix of the domain processed so far. Pushing a coefficient
//    whose level equals the top's triggers cascading averaging that emits
//    detail coefficients ("domino" effect, paper Figure 1b).
//  * gap filling: between two occupied positions the prefix-sum signal is
//    constant, so the gap is covered greedily with maximal aligned dyadic
//    intervals, each pushed as a single average coefficient — all detail
//    coefficients interior to a constant run are zero and are skipped
//    (paper Figure 1c, calcDyadicIntervals).
//  * a bounded min-heap keeps the B most significant coefficients under the
//    L2 normalization.
//
// The output is bit-for-bit the same set of coefficients the naive full
// decomposition would select (verified by property tests).

#ifndef LSMSTATS_SYNOPSIS_WAVELET_BUILDER_H_
#define LSMSTATS_SYNOPSIS_WAVELET_BUILDER_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "synopsis/builder.h"
#include "synopsis/wavelet.h"

namespace lsmstats {

class StreamingWaveletBuilder : public SynopsisBuilder {
 public:
  StreamingWaveletBuilder(const ValueDomain& domain, size_t budget);

  void Add(int64_t value) override;
  std::unique_ptr<Synopsis> Finish() override;

 private:
  // A partial average over the dyadic interval [start, start + 2^level).
  struct AvgCoeff {
    int level = 0;
    uint64_t start = 0;
    double value = 0.0;
  };

  // Flushes the run of duplicates accumulated at last_position_.
  void EmitPendingPosition();

  // Processes one occupied position: fills the gap of constant prefix before
  // it, then pushes the position's own leaf value (transformTuple).
  void EmitPosition(uint64_t position, uint64_t frequency);

  // Covers positions [first, last] (inclusive) with maximal aligned dyadic
  // intervals of constant value `value` (calcDyadicIntervals).
  void FillConstantRun(uint64_t first, uint64_t last, double value);

  // Pushes one average coefficient, cascading with equal-level neighbours
  // and emitting detail coefficients (pushToStack + average).
  void Push(int level, uint64_t start, double value);

  // Offers a detail (or the final overall-average) coefficient to the
  // bounded top-B heap.
  void Offer(uint64_t index, double value);

  ValueDomain domain_;
  size_t budget_;

  std::vector<AvgCoeff> stack_;

  struct HeapEntry {
    double importance;
    WaveletCoefficient coefficient;
    bool operator>(const HeapEntry& other) const {
      return importance > other.importance;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      top_coefficients_;

  double prefix_sum_ = 0.0;
  uint64_t next_position_ = 0;       // first unprocessed domain position
  uint64_t last_position_ = 0;       // position of the pending duplicate run
  uint64_t pending_frequency_ = 0;   // size of the pending duplicate run
  uint64_t total_records_ = 0;
  bool has_pending_ = false;
  bool finished_ = false;
};

}  // namespace lsmstats

#endif  // LSMSTATS_SYNOPSIS_WAVELET_BUILDER_H_
