#include "synopsis/gk_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace lsmstats {

GKSketch::GKSketch(const ValueDomain& domain, size_t budget,
                   std::vector<Tuple> tuples, uint64_t total_records)
    : domain_(domain),
      budget_(budget),
      tuples_(std::move(tuples)),
      total_records_(total_records) {
  LSMSTATS_CHECK(budget >= 2);
  Compress();
}

double GKSketch::EstimateRank(int64_t v) const {
  // rank(v) ~ sum of g over tuples with value <= v, plus half the next
  // tuple's uncertainty band (midpoint estimate).
  double rank = 0;
  for (const Tuple& tuple : tuples_) {
    if (tuple.value > v) return rank + tuple.delta / 2.0;
    rank += tuple.g;
  }
  return rank;
}

double GKSketch::EstimateRange(int64_t lo, int64_t hi) const {
  if (hi < lo || tuples_.empty()) return 0.0;
  double upper = EstimateRank(hi);
  double lower = lo == std::numeric_limits<int64_t>::min()
                     ? 0.0
                     : EstimateRank(lo - 1);
  return std::max(0.0, upper - lower);
}

Status GKSketch::MergeFrom(const GKSketch& other) {
  if (!(domain_ == other.domain_)) {
    return Status::InvalidArgument("GK sketches must share a domain");
  }
  // Standard GK merge: interleave the tuple lists in value order. Each
  // tuple keeps its g; delta grows by the other summary's local uncertainty,
  // conservatively bounded here by keeping the max delta.
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged),
             [](const Tuple& a, const Tuple& b) { return a.value < b.value; });
  tuples_ = std::move(merged);
  total_records_ += other.total_records_;
  Compress();
  return Status::OK();
}

void GKSketch::Compress() {
  if (tuples_.size() <= budget_) return;
  // Space-bounded GK compression: repeatedly merge the adjacent pair with
  // the smallest resulting uncertainty band g_i + g_{i+1} + Δ_{i+1}
  // (the classic COMPRESS rule, driven by a tuple budget instead of a fixed
  // ε). Merging tuple i into its successor keeps the successor's value and
  // Δ and absorbs g — the rank bounds of all other tuples are unaffected.
  while (tuples_.size() > budget_) {
    size_t best = 0;
    double best_band = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < tuples_.size(); ++i) {
      double band = tuples_[i].g + tuples_[i + 1].g + tuples_[i + 1].delta;
      if (band < best_band) {
        best_band = band;
        best = i;
      }
    }
    tuples_[best + 1].g += tuples_[best].g;
    tuples_.erase(tuples_.begin() + static_cast<ptrdiff_t>(best));
  }
}

void GKSketch::EncodeTo(Encoder* enc) const {
  enc->PutU8(static_cast<uint8_t>(type()));
  enc->PutI64(domain_.min_value());
  enc->PutU8(static_cast<uint8_t>(domain_.log_length()));
  enc->PutVarint64(budget_);
  enc->PutVarint64(total_records_);
  enc->PutVarint64(tuples_.size());
  for (const Tuple& tuple : tuples_) {
    enc->PutI64(tuple.value);
    enc->PutDouble(tuple.g);
    enc->PutDouble(tuple.delta);
  }
}

StatusOr<std::unique_ptr<GKSketch>> GKSketch::DecodeFrom(Decoder* dec) {
  int64_t min_value;
  uint8_t log_length;
  LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&min_value));
  LSMSTATS_RETURN_IF_ERROR(dec->GetU8(&log_length));
  if (log_length < 1 || log_length > 64) {
    return Status::Corruption("bad domain log_length");
  }
  uint64_t budget, total, count;
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&budget));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&total));
  LSMSTATS_RETURN_IF_ERROR(dec->GetVarint64(&count));
  if (budget < 2) return Status::Corruption("GK budget too small");
  if (budget > (1ULL << 26) || count > dec->remaining() / 24) {
    return Status::Corruption("GK sketch size exceeds buffer");
  }
  std::vector<GKSketch::Tuple> tuples(count);
  for (auto& tuple : tuples) {
    LSMSTATS_RETURN_IF_ERROR(dec->GetI64(&tuple.value));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&tuple.g));
    LSMSTATS_RETURN_IF_ERROR(dec->GetDouble(&tuple.delta));
  }
  return std::make_unique<GKSketch>(ValueDomain(min_value, log_length),
                                    static_cast<size_t>(budget),
                                    std::move(tuples), total);
}

std::unique_ptr<Synopsis> GKSketch::Clone() const {
  return std::make_unique<GKSketch>(*this);
}

std::string GKSketch::DebugString() const {
  return "GKSketch(tuples=" + std::to_string(tuples_.size()) +
         ", total=" + std::to_string(total_records_) + ")";
}

GKSketchBuilder::GKSketchBuilder(const ValueDomain& domain, size_t budget)
    : domain_(domain), budget_(std::max<size_t>(2, budget)) {
  buffer_.reserve(4 * budget_);
}

void GKSketchBuilder::Add(int64_t value) {
  LSMSTATS_DCHECK(domain_.Contains(value));
  buffer_.push_back(value);
  ++total_records_;
  if (buffer_.size() >= 4 * budget_) FlushBuffer();
}

void GKSketchBuilder::FlushBuffer() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());
  // Merge the sorted batch into the summary. An inserted unit tuple's rank
  // uncertainty is its successor's band (g + Δ − 1), per the classic GK
  // INSERT; tuples landing at either end are exact (Δ = 0).
  std::vector<GKSketch::Tuple> merged;
  merged.reserve(tuples_.size() + buffer_.size());
  size_t ti = 0;
  for (int64_t value : buffer_) {
    while (ti < tuples_.size() && tuples_[ti].value <= value) {
      merged.push_back(tuples_[ti++]);
    }
    double delta = 0.0;
    if (ti < tuples_.size()) {
      delta = std::max(0.0, tuples_[ti].g + tuples_[ti].delta - 1.0);
    }
    merged.push_back({value, 1.0, delta});
  }
  while (ti < tuples_.size()) merged.push_back(tuples_[ti++]);
  tuples_ = std::move(merged);
  buffer_.clear();
  Compress();
}

void GKSketchBuilder::Compress() {
  if (tuples_.size() <= 2 * budget_) return;
  // Same greedy banding as GKSketch::Compress, applied at 2x the budget so
  // incremental inserts have slack.
  GKSketch scratch(domain_, budget_, std::move(tuples_), total_records_);
  tuples_.assign(scratch.tuples().begin(), scratch.tuples().end());
}

std::unique_ptr<Synopsis> GKSketchBuilder::Finish() {
  FlushBuffer();
  return std::make_unique<GKSketch>(domain_, budget_, std::move(tuples_),
                                    total_records_);
}

}  // namespace lsmstats
