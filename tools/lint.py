#!/usr/bin/env python3
"""Project-invariant lint for lsmstats.

Enforces rules clang-tidy cannot express, or that must hold even when
clang-tidy is unavailable:

  raw-new        no raw `new` in src/ unless it is immediately owned by a
                 unique_ptr/shared_ptr (factory over a private constructor)
                 or is an intentionally leaked function-local static registry.
  raw-delete     no `delete` expressions in src/ at all.
  nodiscard      every Status/StatusOr-returning function declared in a src/
                 header carries [[nodiscard]].
  void-drop      a `(void)call(...)` discard must carry a justification
                 comment on the same line or the line above.
  include-cc     no `#include` of a `.cc` file.
  banned-func    no `rand(`, `srand(`, `time(` in src/ — use common/random.h
                 and injected clocks so runs stay reproducible.
  seeded-random  no <random> engines or entropy sources (mt19937,
                 random_device, ...) in src/ or bench/ outside
                 common/random.* — all randomness flows through the
                 seedable common/random.h API so every figure reproduces.
  header-guard   every header uses `#ifndef LSMSTATS_<PATH>_H_` guards that
                 match its path (src/ prefix stripped), with a matching
                 `#define` and a `#endif  // <GUARD>` trailer; no
                 `#pragma once`.
  env-bypass     no direct filesystem syscalls (`::open`, `::rename`,
                 `::fsync`, `::unlink`, `::mkdir`, `::truncate`, ...) or
                 `std::filesystem` in src/ outside common/env.cc and
                 common/file.cc — storage I/O must flow through the Env
                 abstraction so fault injection and crash tests see every
                 mutation. Socket-style `::read`/`::write`/`::close` are
                 not banned (the workload feed uses them on sockets).
  block-layer    no `ChecksummedDataFile` references outside
                 src/lsm/disk_component.cc and src/lsm/format/ — raw
                 data-region reads bypass block framing, per-block CRC
                 verification, and the shared block cache; readers must go
                 through DiskComponent / the block layer.
  wal-io         no `.wal` string literals in src/ outside src/lsm/wal.cc —
                 WAL segment naming, framing, and file access are confined
                 to the WAL module so the log format has exactly one
                 reader/writer and recovery rules stay in one place.
  background-error  `background_error_` is assigned only inside the
                 designated LsmTree setters (SetBackgroundErrorLocked /
                 ClearBackgroundErrorLocked) — every other mutation would
                 bypass the mode machine, the health counters, and the
                 auto-recovery scheduling that those setters keep in sync.
  merge-policy   merge-policy implementations (subclasses of MergePolicy)
                 live in src/lsm/merge_policy.* only, and those two files
                 stay pure decision functions: no Env, no Mutex/locks, no
                 scheduler — PickMerge must be a side-effect-free function
                 of the component metadata so policies are trivially
                 testable and callable under the tree lock.
  memory-budget  runtime budget knobs (LsmTree::SetMemTableMaxBytes /
                 SetBloomBitsPerKey, BlockCache::SetCapacity,
                 CardinalityEstimator::SetCacheByteBudget) are invoked in
                 src/ only from src/db/memory_arbiter.* — every live
                 resize flows through the arbiter so one module owns the
                 global memory split and grants stay explainable from a
                 single Snapshot(). (Tests and benches may call the
                 setters directly.)
  raw-mutex      no `std::mutex` / `std::lock_guard` / `std::unique_lock` /
                 `std::scoped_lock` / `std::condition_variable` /
                 `std::shared_mutex` in src/ outside src/common/mutex.* —
                 all locking goes through the annotated Mutex/MutexLock/
                 CondVar wrappers so thread-safety analysis and the debug
                 lock-rank checker see every acquisition.

Suppressing a finding: append `// lint:allow(<rule>)` to the offending line
together with a reason, e.g.
    ptr = new Node;  // lint:allow(raw-new) arena block, freed in Reset()

Exits non-zero and prints file:line findings when anything is violated.
Wired as the ctest test `lint.project_invariants`; CI runs it on every PR.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

SOURCE_DIRS = ["src", "tests", "bench", "examples", "tools"]
ALLOW_RE = re.compile(r"//\s*lint:allow\((?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

findings: list[str] = []


def report(path: Path, lineno: int, rule: str, message: str) -> None:
    findings.append(f"{path.relative_to(REPO)}:{lineno}: [{rule}] {message}")


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    if not m:
        return False
    return rule in [r.strip() for r in m.group("rules").split(",")]


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_files(dirs: list[str], suffixes: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for d in dirs:
        root = REPO / d
        if root.is_dir():
            files.extend(
                p for p in sorted(root.rglob("*")) if p.suffix in suffixes
            )
    return files


# --------------------------------------------------------------- raw new/delete

NEW_RE = re.compile(r"\bnew\b(?!\s*\()")  # `new (place)` is still caught below
DELETE_RE = re.compile(r"\bdelete\b")
# `= delete` / `= delete("...")` is declaration syntax, not a delete expression.
DELETED_FN_RE = re.compile(r"=\s*delete\b")
OWNED_CONTEXT_RE = re.compile(r"unique_ptr|shared_ptr|static\s")


def check_raw_new_delete(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        if (DELETE_RE.search(code) and not DELETED_FN_RE.search(code)
                and not allowed(raw_lines[idx], "raw-delete")):
            report(path, lineno, "raw-delete",
                   "raw `delete` — ownership belongs in smart pointers")
        if NEW_RE.search(code) or re.search(r"\bnew\s*\(", code):
            if allowed(raw_lines[idx], "raw-new"):
                continue
            # A `new` is fine when the same statement hands it to a smart
            # pointer or it seeds an intentionally leaked static registry;
            # check a small window because factories split across lines.
            window = " ".join(code_lines[max(0, idx - 2): idx + 1])
            if OWNED_CONTEXT_RE.search(window):
                continue
            report(path, lineno, "raw-new",
                   "raw `new` outside smart-pointer/static-registry context")


# ----------------------------------------------------------------- nodiscard

STATUS_DECL_RE = re.compile(
    r"^\s*(?:virtual\s+)?(?:static\s+)?(?:Status\s+[A-Za-z_]\w*\s*\(|StatusOr<.*>\s+[A-Za-z_]\w*\s*\()"
)


def check_nodiscard(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    for idx, code in enumerate(code_lines):
        if not STATUS_DECL_RE.match(code):
            continue
        if "nodiscard" in raw_lines[idx] or (idx > 0 and "nodiscard" in raw_lines[idx - 1]):
            continue
        if allowed(raw_lines[idx], "nodiscard"):
            continue
        report(path, idx + 1, "nodiscard",
               "Status/StatusOr-returning declaration missing [[nodiscard]]")


# ----------------------------------------------------------------- void-drop

VOID_DROP_RE = re.compile(r"\(void\)\s*[A-Za-z_][\w:.>-]*\s*\(")


def check_void_drop(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    for idx, code in enumerate(code_lines):
        if not VOID_DROP_RE.search(code):
            continue
        if allowed(raw_lines[idx], "void-drop"):
            continue
        has_comment = "//" in raw_lines[idx] or (
            idx > 0 and raw_lines[idx - 1].strip().startswith("//")
        )
        if not has_comment:
            report(path, idx + 1, "void-drop",
                   "`(void)` discard of a call needs a justification comment")


# ---------------------------------------------------------------- include-cc

INCLUDE_CC_RE = re.compile(r'#\s*include\s*[<"][^">]+\.cc[">]')


def check_include_cc(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    for idx, raw in enumerate(raw_lines):
        if INCLUDE_CC_RE.search(raw) and not allowed(raw, "include-cc"):
            report(path, idx + 1, "include-cc", "#include of a .cc file")


# --------------------------------------------------------------- banned-func

BANNED_RE = re.compile(r"(?<![\w.])(?:std::)?(rand|srand|time)\s*\(")


def check_banned(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    for idx, code in enumerate(code_lines):
        m = BANNED_RE.search(code)
        if m and not allowed(raw_lines[idx], "banned-func"):
            report(path, idx + 1, "banned-func",
                   f"`{m.group(1)}()` is banned in src/ — use common/random.h "
                   "or an injected clock (reproducibility)")


# ------------------------------------------------------------- seeded-random

# <random> engines and entropy sources. Distributions (uniform_int_distribution
# etc.) are deliberately not listed: they are deterministic transforms and the
# platform-independent ones are fine to use over a common/random.h engine.
SEEDED_RANDOM_RE = re.compile(
    r"\b(?:std::)?("
    r"mt19937(?:_64)?|minstd_rand0?|default_random_engine|random_device|"
    r"ranlux\d+(?:_base)?|knuth_b|subtract_with_carry_engine|"
    r"linear_congruential_engine|mersenne_twister_engine"
    r")\b"
)


def check_seeded_random(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    for idx, code in enumerate(code_lines):
        m = SEEDED_RANDOM_RE.search(code)
        if m and not allowed(raw_lines[idx], "seeded-random"):
            report(path, idx + 1, "seeded-random",
                   f"`{m.group(1)}` — randomness must flow through "
                   "common/random.h so seeds are explicit and runs reproduce")


# ---------------------------------------------------------------- env-bypass

# Filesystem mutation and file-I/O syscalls that must flow through Env so
# FaultInjectionEnv observes every mutating operation. `::read`/`::write`/
# `::close` are deliberately absent: src/workload uses them on sockets.
ENV_BYPASS_RE = re.compile(
    r"(?<![\w])::("
    r"open|openat|creat|rename|renameat|fsync|fdatasync|sync_file_range|"
    r"unlink|unlinkat|remove|mkdir|mkdirat|rmdir|truncate|ftruncate|"
    r"pread|pwrite|link|symlink"
    r")\s*\(|std\s*::\s*filesystem\b"
)

# The only files allowed to touch the filesystem directly: the Env interface
# and its Posix primitives.
ENV_IMPL_FILES = {"env.cc", "file.cc"}


def check_env_bypass(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    if path.parent == SRC / "common" and path.name in ENV_IMPL_FILES:
        return
    for idx, code in enumerate(code_lines):
        m = ENV_BYPASS_RE.search(code)
        if m and not allowed(raw_lines[idx], "env-bypass"):
            what = m.group(1) or "std::filesystem"
            report(path, idx + 1, "env-bypass",
                   f"direct filesystem access (`{what}`) — route storage I/O "
                   "through common/env.h so fault injection sees it")


# --------------------------------------------------------------- block-layer

BLOCK_LAYER_RE = re.compile(r"\bChecksummedDataFile\b")

# The only places allowed to touch the raw checksummed data region: the
# component reader that wraps it and the block format layer itself.
BLOCK_LAYER_FILES = {SRC / "lsm" / "disk_component.cc"}


def check_block_layer(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    if path in BLOCK_LAYER_FILES or SRC / "lsm" / "format" in path.parents:
        return
    for idx, code in enumerate(code_lines):
        if BLOCK_LAYER_RE.search(code) and not allowed(raw_lines[idx], "block-layer"):
            report(path, idx + 1, "block-layer",
                   "`ChecksummedDataFile` outside the block layer — read "
                   "component data through DiskComponent so block CRCs and "
                   "the block cache stay on the path")


# -------------------------------------------------------------------- wal-io

# A string literal mentioning the `.wal` suffix. Scanned over RAW lines (the
# code view blanks string literals) so constructing WAL paths outside the WAL
# module is caught.
WAL_IO_RE = re.compile(r'"[^"]*\.wal[^"]*"')

WAL_IMPL_FILES = {SRC / "lsm" / "wal.cc"}


def check_wal_io(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    if path in WAL_IMPL_FILES:
        return
    for idx, raw in enumerate(raw_lines):
        if WAL_IO_RE.search(raw) and not allowed(raw, "wal-io"):
            report(path, idx + 1, "wal-io",
                   "`.wal` literal outside src/lsm/wal.cc — WAL segment "
                   "naming and file access belong to the WAL module "
                   "(use WalFilePath / RecoverWalSegments)")


# ----------------------------------------------------------------- raw-mutex

# Raw standard-library synchronization primitives. Locking in src/ must use
# the annotated wrappers in common/mutex.h: they carry the Clang thread-safety
# capability attributes and the debug lock-rank checker, and a raw std::mutex
# is invisible to both. timed/recursive variants are matched by prefix.
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*("
    r"mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?"
    r")\b"
    r"|#\s*include\s*<(?:mutex|shared_mutex|condition_variable)>"
)

# The annotated wrapper itself is the one place allowed to touch std::mutex.
RAW_MUTEX_IMPL_FILES = {SRC / "common" / "mutex.h", SRC / "common" / "mutex.cc"}


def check_raw_mutex(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    if path in RAW_MUTEX_IMPL_FILES:
        return
    for idx, code in enumerate(code_lines):
        m = RAW_MUTEX_RE.search(code)
        if m and not allowed(raw_lines[idx], "raw-mutex"):
            what = m.group(1) or "<mutex>/<condition_variable> include"
            report(path, idx + 1, "raw-mutex",
                   f"raw `{what}` — use Mutex/MutexLock/CondVar from "
                   "common/mutex.h so the thread-safety annotations and the "
                   "lock-rank checker cover it")


# ------------------------------------------------------------- memory-budget

# A *call* (object->Set.../object.Set...) of a runtime budget knob. Plain
# declarations and the defining `ReturnType Class::SetX(...)` lines do not
# match — only invocation sites. Confined to the arbiter module so exactly
# one place in src/ decides how the global memory budget is split; ad-hoc
# resizes elsewhere would silently fight the arbiter's grants.
MEMORY_BUDGET_RE = re.compile(
    r"(?:->|\.)\s*("
    r"SetMemTableMaxBytes|SetBloomBitsPerKey|SetCapacity|SetCacheByteBudget"
    r")\s*\("
)

MEMORY_BUDGET_FILES = {
    SRC / "db" / "memory_arbiter.h",
    SRC / "db" / "memory_arbiter.cc",
}


def check_memory_budget(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    if path in MEMORY_BUDGET_FILES:
        return
    for idx, code in enumerate(code_lines):
        m = MEMORY_BUDGET_RE.search(code)
        if m and not allowed(raw_lines[idx], "memory-budget"):
            report(path, idx + 1, "memory-budget",
                   f"`{m.group(1)}` called outside src/db/memory_arbiter.* — "
                   "live budget resizes go through the MemoryArbiter so one "
                   "module owns the global memory split")


# -------------------------------------------------------------- merge-policy

# A class deriving from MergePolicy. Implementations are confined to
# src/lsm/merge_policy.* so there is exactly one place to audit the decision
# logic (tests may subclass freely).
MERGE_POLICY_SUBCLASS_RE = re.compile(r":\s*(?:public\s+)?MergePolicy\b")

# Impurity markers inside the policy module itself: environment access,
# locking, or scheduling would make PickMerge a stateful actor instead of a
# pure function of the metadata snapshot (it runs under the tree lock).
MERGE_POLICY_IMPURE_RE = re.compile(
    r"\bEnv\b|\bMutex\b|\bMutexLock\b|\bCondVar\b|\bLockRank\b|"
    r"\bBackgroundScheduler\b|->\s*Schedule\s*\("
)
# Matched against RAW lines (the code view blanks string literals).
MERGE_POLICY_INCLUDE_RE = re.compile(
    r'#\s*include\s*"(?:common/(?:env|mutex)|lsm/scheduler)\.h"'
)

MERGE_POLICY_FILES = {SRC / "lsm" / "merge_policy.h", SRC / "lsm" / "merge_policy.cc"}


def check_merge_policy(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    if path in MERGE_POLICY_FILES:
        for idx, code in enumerate(code_lines):
            if ((MERGE_POLICY_IMPURE_RE.search(code)
                 or MERGE_POLICY_INCLUDE_RE.search(raw_lines[idx]))
                    and not allowed(raw_lines[idx], "merge-policy")):
                report(path, idx + 1, "merge-policy",
                       "merge policies must stay pure decision functions — "
                       "no Env, locks, or scheduler in merge_policy.*")
        return
    for idx, code in enumerate(code_lines):
        if (MERGE_POLICY_SUBCLASS_RE.search(code)
                and not allowed(raw_lines[idx], "merge-policy")):
            report(path, idx + 1, "merge-policy",
                   "MergePolicy subclass outside src/lsm/merge_policy.* — "
                   "policy implementations live in the policy module")


# ----------------------------------------------------------- background-error

# An assignment to the background-error slot (not `==` comparison). Mutating
# it anywhere but the designated setters skips the healthy/recovering/
# read-only transitions, the health counters, and the recovery-job slot
# accounting those setters maintain.
BACKGROUND_ERROR_RE = re.compile(r"\bbackground_error_\s*=(?!=)")

# The designated setters, in the one file allowed to contain them.
BACKGROUND_ERROR_IMPL = SRC / "lsm" / "lsm_tree.cc"
BACKGROUND_ERROR_SETTERS = {"SetBackgroundErrorLocked", "ClearBackgroundErrorLocked"}
LSM_TREE_FN_RE = re.compile(r"\bLsmTree::(\w+)\s*\(")


def check_background_error(path: Path, raw_lines: list[str], code_lines: list[str]) -> None:
    current_fn = ""
    for idx, code in enumerate(code_lines):
        m = LSM_TREE_FN_RE.search(code)
        if m:
            current_fn = m.group(1)
        if not BACKGROUND_ERROR_RE.search(code):
            continue
        if allowed(raw_lines[idx], "background-error"):
            continue
        if path == BACKGROUND_ERROR_IMPL and current_fn in BACKGROUND_ERROR_SETTERS:
            continue
        report(path, idx + 1, "background-error",
               "`background_error_` assigned outside SetBackgroundErrorLocked/"
               "ClearBackgroundErrorLocked — use the setters so mode, health "
               "counters, and auto-recovery stay in sync")


# -------------------------------------------------------------- header-guard

def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO)
    parts = rel.parts[1:] if rel.parts[0] == "src" else rel.parts
    stem = "_".join(parts).replace(".", "_").replace("-", "_").upper()
    return f"LSMSTATS_{stem}_"


def check_header_guard(path: Path, raw_lines: list[str]) -> None:
    text = "\n".join(raw_lines)
    if "#pragma once" in text:
        lineno = next(i + 1 for i, l in enumerate(raw_lines) if "#pragma once" in l)
        report(path, lineno, "header-guard",
               "`#pragma once` — use LSMSTATS_*_H_ include guards")
        return
    guard = expected_guard(path)
    ifndef_idx = None
    for idx, line in enumerate(raw_lines):
        if line.startswith("#ifndef"):
            ifndef_idx = idx
            break
    if ifndef_idx is None:
        report(path, 1, "header-guard", f"missing `#ifndef {guard}` guard")
        return
    got = raw_lines[ifndef_idx].split()
    if len(got) < 2 or got[1] != guard:
        report(path, ifndef_idx + 1, "header-guard",
               f"guard is `{got[1] if len(got) > 1 else ''}`, expected `{guard}`")
        return
    define = raw_lines[ifndef_idx + 1].strip() if ifndef_idx + 1 < len(raw_lines) else ""
    if define != f"#define {guard}":
        report(path, ifndef_idx + 2, "header-guard",
               f"`#ifndef {guard}` not followed by `#define {guard}`")
    tail = [l.strip() for l in raw_lines if l.strip()]
    if not tail or not tail[-1].startswith("#endif") or guard not in tail[-1]:
        report(path, len(raw_lines), "header-guard",
               f"file must end with `#endif  // {guard}`")


# --------------------------------------------------------------------- main

def main() -> int:
    cc_and_h = iter_files(SOURCE_DIRS, (".cc", ".cpp", ".h"))
    src_only = [p for p in cc_and_h if SRC in p.parents]
    headers = [p for p in cc_and_h if p.suffix == ".h"]
    src_headers = [p for p in headers if SRC in p.parents]

    cache: dict[Path, tuple[list[str], list[str]]] = {}

    def lines_of(path: Path) -> tuple[list[str], list[str]]:
        if path not in cache:
            text = path.read_text(encoding="utf-8", errors="replace")
            cache[path] = (text.split("\n"), strip_comments_and_strings(text).split("\n"))
        return cache[path]

    for path in cc_and_h:
        raw, code = lines_of(path)
        check_include_cc(path, raw, code)
        check_void_drop(path, raw, code)
        check_block_layer(path, raw, code)
    for path in src_only:
        raw, code = lines_of(path)
        check_raw_new_delete(path, raw, code)
        check_banned(path, raw, code)
        check_env_bypass(path, raw, code)
        check_wal_io(path, raw, code)
        check_raw_mutex(path, raw, code)
        check_memory_budget(path, raw, code)
        check_merge_policy(path, raw, code)
        check_background_error(path, raw, code)
    random_impl = REPO / "src" / "common"
    for path in cc_and_h:
        if SRC not in path.parents and (REPO / "bench") not in path.parents:
            continue
        if path.parent == random_impl and path.stem == "random":
            continue
        raw, code = lines_of(path)
        check_seeded_random(path, raw, code)
    for path in src_headers:
        raw, code = lines_of(path)
        check_nodiscard(path, raw, code)
    for path in headers:
        raw, _ = lines_of(path)
        check_header_guard(path, raw)

    if findings:
        print(f"tools/lint.py: {len(findings)} finding(s)\n")
        for f in findings:
            print("  " + f)
        print("\nSuppress a single line with `// lint:allow(<rule>)` plus a reason;"
              "\nsee tools/lint.py docstring for the rule list.")
        return 1
    checked = len(cc_and_h)
    print(f"tools/lint.py: OK ({checked} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
