// Ablation A2 (design choice of §3.2): prefix-sum wavelet encoding vs. the
// classical raw-frequency encoding.
//
// The paper converts the frequency signal into its prefix sum before the
// Haar decomposition ("our preliminary experiments showed that using a
// 'dense' prefix sum ... significantly improves the accuracy of range-sum
// queries"). This bench reproduces that preliminary experiment: identical
// data and budgets, one wavelet built over the prefix sum (the streaming
// Algorithm 1) and one over the raw frequencies (the classical encoding),
// compared on FixedLength range queries and point queries.

#include <cinttypes>

#include "bench_common.h"
#include "synopsis/wavelet_builder.h"
#include "synopsis/wavelet_naive.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 14));
  const std::vector<size_t> budgets = {16, 64, 256, 1024};

  std::printf("Ablation A2: prefix-sum vs raw-frequency wavelet encoding "
              "(records=%" PRIu64 ", log_domain=%d)\n",
              records, log_domain);

  PrintHeader("A2  [normalized L1 error, FixedLength(128) | Point]",
              {"Spread", "Encoding", "16", "64", "256", "1024", "Point@256"});
  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = FrequencyDistribution::kZipf;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);

    // Tuples (position, frequency), ascending.
    std::vector<std::pair<uint64_t, uint64_t>> tuples;
    for (size_t i = 0; i < dist.values().size(); ++i) {
      tuples.push_back(
          {spec.domain.Position(dist.values()[i]), dist.frequencies()[i]});
    }
    auto range_queries = QueryGenerator::Make(QueryType::kFixedLength,
                                              spec.domain, 128, 99, queries);
    auto point_queries = QueryGenerator::Make(QueryType::kPoint, spec.domain,
                                              1, 101, queries);

    for (WaveletEncoding encoding :
         {WaveletEncoding::kPrefixSum, WaveletEncoding::kRawFrequency}) {
      PrintCell(SpreadDistributionToString(spread));
      PrintCell(encoding == WaveletEncoding::kPrefixSum ? "PrefixSum"
                                                        : "RawFrequency");
      std::unique_ptr<WaveletSynopsis> at_256;
      for (size_t budget : budgets) {
        std::unique_ptr<WaveletSynopsis> synopsis =
            BuildWaveletNaive(spec.domain, budget, encoding, tuples);
        double error = NormalizedL1Error(
            range_queries,
            [&](const RangeQuery& q) {
              return synopsis->EstimateRange(q.lo, q.hi);
            },
            [&](const RangeQuery& q) { return dist.ExactRange(q.lo, q.hi); },
            dist.total_records());
        PrintCell(error);
        if (budget == 256) at_256 = std::move(synopsis);
      }
      PrintCell(NormalizedL1Error(
          point_queries,
          [&](const RangeQuery& q) {
            return at_256->EstimateRange(q.lo, q.hi);
          },
          [&](const RangeQuery& q) { return dist.ExactRange(q.lo, q.hi); },
          dist.total_records()));
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
