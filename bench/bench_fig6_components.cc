// Figure 6: effect of the number of LSM components.
//
// Using the Constant merge policy to pin the number of disk components at
// 8 -> 128 while keeping the TOTAL statistics space fixed (per-component
// budget = total / K, §4.3.3), measure
//   (a) the normalized L1 error of FixedLength(128) queries, and
//   (b) the query-optimization-time overhead of computing an estimate
//       (probing all K component synopses, merged-synopsis cache disabled so
//       every query pays the full Algorithm 2 loop).
//
// Expected shape: more components -> slightly worse accuracy (each synopsis
// holds fewer elements) and slightly higher query-time overhead, but the
// overhead stays well under a millisecond.

#include <cinttypes>

#include "bench_common.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t total_budget = flags.GetU64("total_budget", 1024);
  const auto frequency = ParseFrequencyDistribution(
      flags.GetString("frequencies", "Uniform"));
  LSMSTATS_CHECK_OK(frequency.status());
  // Storage knobs; the defaults reproduce the paper figure bit-for-bit.
  const std::string compression = flags.GetString("compression", "");
  const uint64_t block_cache_mb = flags.GetU64("block_cache_mb", 0);
  const std::vector<size_t> component_counts = {8, 16, 32, 64, 128};

  std::printf("Figure 6: accuracy and query overhead vs #components "
              "(records=%" PRIu64 ", %s frequencies, total budget %zu "
              "elements)\n",
              records, FrequencyDistributionToString(*frequency),
              total_budget);

  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = *frequency;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);
    auto record_values = dist.ExpandShuffled(7);
    auto query_set = QueryGenerator::Make(QueryType::kFixedLength,
                                          spec.domain, 128, 99, queries);

    PrintHeader(std::string("Fig 6, spread = ") +
                    SpreadDistributionToString(spread) +
                    "  [error | ms/query]",
                {"Synopsis", "K", "error", "ms/query", "components"});
    for (size_t k : component_counts) {
      std::vector<StatsRig::SynopsisSlot> slots;
      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        slots.push_back({SynopsisTypeToString(type), type,
                         std::max<size_t>(1, total_budget / k)});
      }
      ScopedTempDir dir;
      // 2k memtable generations guarantee the Constant policy converges to
      // exactly k disk components.
      StatsRig rig(dir.path(), spec.domain, slots,
                   std::make_shared<ConstantMergePolicy>(k),
                   records / (2 * k) + 1, compression, block_cache_mb);
      rig.IngestAll(record_values);
      rig.Flush();

      // Disable the merged cache: every query walks all K synopses, the
      // overhead the figure measures.
      CardinalityEstimator::Options options;
      options.enable_merged_cache = false;
      CardinalityEstimator estimator(rig.catalog(), options);

      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        StatisticsKey key{"rig", SynopsisTypeToString(type), 0};
        double error = NormalizedL1Error(
            query_set,
            [&](const RangeQuery& q) {
              return estimator.EstimateRangePartition(key, q.lo, q.hi);
            },
            [&](const RangeQuery& q) { return dist.ExactRange(q.lo, q.hi); },
            dist.total_records());
        WallTimer timer;
        double checksum = 0;
        for (const RangeQuery& q : query_set) {
          checksum += estimator.EstimateRangePartition(key, q.lo, q.hi);
        }
        double ms_per_query =
            timer.ElapsedMillis() / static_cast<double>(query_set.size());
        (void)checksum;
        PrintCell(SynopsisTypeToString(type));
        PrintCell(static_cast<double>(k));
        PrintCell(error);
        PrintCell(ms_per_query);
        PrintCell(static_cast<double>(rig.tree()->ComponentCount()));
        EndRow();
      }
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
