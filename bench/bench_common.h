// Shared harness for the per-figure experiment binaries.
//
// Every bench binary reproduces one table/figure of the paper's §4 and
// prints the same rows/series. Scales default to a single-core CI box; use
// --records= / --queries= / --values= to approach paper scale (50M records,
// 1000 queries). Output format:
//
//   column headers, then one row per (distribution, series-point) with the
//   normalized L1 error or the overhead in ms — matching the quantity on
//   the figure's y-axis.

#ifndef LSMSTATS_BENCH_BENCH_COMMON_H_
#define LSMSTATS_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "lsm/format/block.h"
#include "lsm/format/block_cache.h"
#include "lsm/lsm_tree.h"
#include "stats/cardinality_estimator.h"
#include "stats/statistics_collector.h"
#include "workload/distribution.h"
#include "workload/query_workload.h"

namespace lsmstats::bench {

// ------------------------------------------------------------------ flags

// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  uint64_t GetU64(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(
        it->second.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

// --------------------------------------------------------------- temp dir

class ScopedTempDir {
 public:
  ScopedTempDir() {
    char tmpl[] = "/tmp/lsmstats_bench_XXXXXX";
    path_ = ::mkdtemp(tmpl);
    LSMSTATS_CHECK(!path_.empty());
  }
  ~ScopedTempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------------------------ timer

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// ------------------------------------------------------------------ table

inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const auto& column : columns) std::printf("%-16s", column.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%-16s", "----");
  std::printf("\n");
}

inline void PrintCell(const std::string& value) {
  std::printf("%-16s", value.c_str());
}
inline void PrintCell(double value) { std::printf("%-16.6g", value); }
inline void EndRow() { std::printf("\n"); }

// ------------------------------------------------------------- stats rig

// A statistics-collection rig around one secondary-index LSM tree: entries
// are <value, pk> pairs, exactly the stream the paper builds synopses on.
// Several synopsis configurations (type x budget) can be collected
// simultaneously from one ingestion pass; each publishes under its own
// label.
class StatsRig {
 public:
  struct SynopsisSlot {
    std::string label;
    SynopsisType type;
    size_t budget;
  };

  // `compression` other than "" overrides the component codec ("none",
  // "delta", ...); `block_cache_mb` > 0 gives the rig's tree a private block
  // cache. The defaults leave the paper-figure runs bit-identical.
  StatsRig(const std::string& directory, const ValueDomain& domain,
           const std::vector<SynopsisSlot>& slots,
           std::shared_ptr<MergePolicy> policy, uint64_t memtable_entries,
           const std::string& compression = "",
           uint64_t block_cache_mb = 0)
      : sink_(&catalog_), estimator_(&catalog_, {}) {
    LsmTreeOptions options;
    options.directory = directory;
    options.name = "rig";
    options.memtable_max_entries = memtable_entries;
    options.merge_policy = std::move(policy);
    if (!compression.empty()) {
      ComponentWriteOptions write_options = EnvironmentWriteOptions();
      write_options.compression = compression;
      options.write_options = write_options;
    }
    if (block_cache_mb > 0) {
      cache_ = std::make_unique<BlockCache>(block_cache_mb << 20);
      options.block_cache = cache_.get();
    }
    auto tree = LsmTree::Open(options);
    LSMSTATS_CHECK_OK(tree.status());
    tree_ = std::move(tree).value();
    for (const SynopsisSlot& slot : slots) {
      SynopsisConfig config{slot.type, slot.budget, domain};
      collectors_.push_back(std::make_unique<StatisticsCollector>(
          StatisticsKey{"rig", slot.label, 0}, config, &sink_));
      tree_->AddListener(collectors_.back().get());
    }
  }

  // Inserts one record's value; pk is assigned sequentially.
  void Ingest(int64_t value) {
    LSMSTATS_CHECK_OK(
        tree_->Put(SecondaryKey(value, next_pk_++), "", true));
  }

  void IngestAll(const std::vector<int64_t>& values) {
    for (int64_t value : values) Ingest(value);
  }

  // Deletes a previously ingested <value, pk> entry. When the original has
  // already been flushed this lands as anti-matter that only a merge can
  // reconcile — the mechanism the accuracy-vs-policy mode measures.
  void Delete(int64_t value, int64_t pk) {
    LSMSTATS_CHECK_OK(tree_->Delete(SecondaryKey(value, pk)));
  }

  void Flush() { LSMSTATS_CHECK_OK(tree_->Flush()); }
  void ForceFullMerge() { LSMSTATS_CHECK_OK(tree_->ForceFullMerge()); }

  double Estimate(const std::string& label, int64_t lo, int64_t hi,
                  CardinalityEstimator::QueryStats* stats = nullptr) {
    return estimator_.EstimateRangePartition({"rig", label, 0}, lo, hi,
                                             stats);
  }

  LsmTree* tree() { return tree_.get(); }
  StatisticsCatalog* catalog() { return &catalog_; }
  CardinalityEstimator* estimator() { return &estimator_; }
  BlockCache* block_cache() { return cache_.get(); }

 private:
  StatisticsCatalog catalog_;
  LocalCatalogSink sink_;
  CardinalityEstimator estimator_;
  // Declared before the tree so it outlives the tree's readers.
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<LsmTree> tree_;
  std::vector<std::unique_ptr<StatisticsCollector>> collectors_;
  int64_t next_pk_ = 0;
};

// The three synopsis types of the evaluation, in paper order.
inline const std::vector<SynopsisType>& EvaluatedSynopsisTypes() {
  static const auto* kTypes = new std::vector<SynopsisType>{
      SynopsisType::kEquiHeightHistogram, SynopsisType::kEquiWidthHistogram,
      SynopsisType::kWavelet};
  return *kTypes;
}

// Accuracy measurement: normalized L1 error of `label` in `rig` against the
// exact oracle, over `queries`.
inline double MeasureError(StatsRig& rig, const std::string& label,
                           const std::vector<RangeQuery>& queries,
                           const SyntheticDistribution& oracle) {
  return NormalizedL1Error(
      queries,
      [&](const RangeQuery& q) { return rig.Estimate(label, q.lo, q.hi); },
      [&](const RangeQuery& q) { return oracle.ExactRange(q.lo, q.hi); },
      oracle.total_records());
}

}  // namespace lsmstats::bench

#endif  // LSMSTATS_BENCH_BENCH_COMMON_H_
