// Ablation A3: event-piggybacked statistics vs. the classic offline
// RUN ANALYZE job — the comparison that motivates the whole paper (§1).
//
// Part 1 (cost): the I/O and wall time ANALYZE pays to scan the dataset,
// versus the piggybacked path whose marginal cost rides on LSM events that
// happen anyway (Figure 2 measures that marginal cost as ~zero).
//
// Part 2 (staleness): ANALYZE once, keep ingesting, and watch its estimates
// decay while the piggybacked statistics stay in sync — including the
// accuracy-ceiling comparison against the offline-only MaxDiff histogram,
// which quantifies what the framework's single-pass restriction costs at
// the moment ANALYZE is freshest.

#include <cinttypes>

#include "bench_common.h"
#include "db/dataset.h"
#include "stats/analyze_job.h"
#include "synopsis/maxdiff_histogram.h"
#include "workload/exact_counter.h"
#include "workload/tweets.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 100000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const size_t stages = 5;  // ANALYZE refreshes only at stage 0

  std::printf("Ablation A3: piggybacked statistics vs offline ANALYZE "
              "(records=%" PRIu64 " ingested in %zu stages, %zu-element "
              "synopses)\n",
              records, stages, budget);

  DistributionSpec spec;
  spec.spread = SpreadDistribution::kZipfRandom;
  spec.frequency = FrequencyDistribution::kZipf;
  spec.num_values = values;
  spec.total_records = records;
  spec.domain = ValueDomain(0, log_domain);
  auto dist = SyntheticDistribution::Generate(spec);
  TweetGenerator generator(dist, 32, 7);
  std::vector<Record> base_records;
  while (generator.HasNext()) base_records.push_back(generator.Next());

  StatisticsCatalog live_catalog;   // piggybacked
  StatisticsCatalog stale_catalog;  // ANALYZE, run once after stage 1
  LocalCatalogSink sink(&live_catalog);
  ScopedTempDir dir;
  DatasetOptions options;
  options.directory = dir.path();
  options.name = "tweets";
  options.schema = TweetSchema(spec.domain);
  options.synopsis_type = SynopsisType::kEquiHeightHistogram;
  options.synopsis_budget = budget;
  options.memtable_max_entries = records / 10 + 1;
  options.merge_policy = std::make_shared<PrefixMergePolicy>(64ull << 20, 4);
  options.sink = &sink;
  auto dataset_or = Dataset::Open(std::move(options));
  LSMSTATS_CHECK_OK(dataset_or.status());
  Dataset& dataset = *dataset_or.value();

  CardinalityEstimator live(&live_catalog, {});
  CardinalityEstimator stale(&stale_catalog, {});
  auto query_set = QueryGenerator::Make(QueryType::kFixedLength, spec.domain,
                                        128, 99, queries);
  StatisticsKey key = dataset.StatsKey(kTweetMetricField);

  PrintHeader("A3 part 2: accuracy while ingestion continues "
              "[normalized L1 error]",
              {"after stage", "piggybacked", "stale ANALYZE", "analyze_age"});

  size_t per_stage = base_records.size() / stages;
  std::vector<int64_t> ingested_values;
  AnalyzeResult analyze_result;
  for (size_t stage = 0; stage < stages; ++stage) {
    size_t begin = stage * per_stage;
    size_t end = stage + 1 == stages ? base_records.size()
                                     : begin + per_stage;
    for (size_t i = begin; i < end; ++i) {
      LSMSTATS_CHECK_OK(dataset.Insert(base_records[i]));
      ingested_values.push_back(base_records[i].fields[0]);
    }
    LSMSTATS_CHECK_OK(dataset.Flush());

    if (stage == 0) {
      // The one-and-only ANALYZE run of the classic model.
      auto result = RunAnalyze(&dataset, kTweetMetricField,
                               SynopsisType::kEquiHeightHistogram, budget);
      LSMSTATS_CHECK_OK(result.status());
      analyze_result = *result;
      InstallAnalyzeResult(&stale_catalog, key, analyze_result);
    }

    ExactCounter oracle(ingested_values);
    auto measure = [&](CardinalityEstimator& estimator) {
      return NormalizedL1Error(
          query_set,
          [&](const RangeQuery& q) {
            return estimator.EstimateRangePartition(key, q.lo, q.hi);
          },
          [&](const RangeQuery& q) { return oracle.ExactRange(q.lo, q.hi); },
          records);
    };
    PrintCell(std::to_string(stage + 1) + "/" + std::to_string(stages));
    PrintCell(measure(live));
    PrintCell(measure(stale));
    PrintCell(std::to_string(ingested_values.size() -
                             analyze_result.records_scanned) +
              " recs");
    EndRow();
  }

  // Part 1: the cost of refreshing ANALYZE now, at full size.
  auto final_run = RunAnalyze(&dataset, kTweetMetricField,
                              SynopsisType::kEquiHeightHistogram, budget);
  LSMSTATS_CHECK_OK(final_run.status());
  PrintHeader("A3 part 1: cost of one ANALYZE refresh at full size",
              {"records", "bytes_read", "seconds", "recs/s"});
  PrintCell(static_cast<double>(final_run->records_scanned));
  PrintCell(static_cast<double>(final_run->bytes_read));
  PrintCell(final_run->seconds);
  PrintCell(static_cast<double>(final_run->records_scanned) /
            final_run->seconds);
  EndRow();

  // Accuracy ceiling: offline MaxDiff vs the streaming types, both fresh.
  PrintHeader("A3 accuracy ceiling (all synopses fresh, same budget) "
              "[normalized L1 error]",
              {"Synopsis", "error"});
  ExactCounter oracle(ingested_values);
  for (SynopsisType type :
       {SynopsisType::kEquiWidthHistogram, SynopsisType::kEquiHeightHistogram,
        SynopsisType::kWavelet, SynopsisType::kMaxDiff,
        SynopsisType::kVOptimal}) {
    auto fresh = RunAnalyze(&dataset, kTweetMetricField, type, budget);
    LSMSTATS_CHECK_OK(fresh.status());
    double error = NormalizedL1Error(
        query_set,
        [&](const RangeQuery& q) {
          return std::max(0.0, fresh->synopsis->EstimateRange(q.lo, q.hi));
        },
        [&](const RangeQuery& q) { return oracle.ExactRange(q.lo, q.hi); },
        records);
    PrintCell(SynopsisTypeToString(type));
    PrintCell(error);
    EndRow();
  }

  // Build-cost scaling: the §1 complexity argument with numbers. Streaming
  // builders are O(n); the V-optimal DP is O(V^2 * B) in the number of
  // distinct values — the asymptotic wall that keeps it off the ingestion
  // critical path.
  PrintHeader("A3 build cost vs distinct values V (256-element budget) "
              "[milliseconds]",
              {"V", "EquiHeight (stream)", "Wavelet (stream)",
               "MaxDiff (offline)", "VOptimal (offline DP)"});
  for (size_t v : {500u, 1000u, 2000u, 4000u}) {
    std::vector<std::pair<uint64_t, uint64_t>> aggregate;
    Random vr(3);
    uint64_t pos = 0;
    std::vector<int64_t> sorted_values;
    for (size_t i = 0; i < v; ++i) {
      pos += 1 + vr.Uniform(8);
      uint64_t freq = 1 + vr.Uniform(20);
      aggregate.push_back({pos, freq});
      for (uint64_t f = 0; f < freq; ++f) {
        sorted_values.push_back(static_cast<int64_t>(pos));
      }
    }
    ValueDomain build_domain(0, 16);
    PrintCell(static_cast<double>(v));
    for (SynopsisType type : {SynopsisType::kEquiHeightHistogram,
                              SynopsisType::kWavelet}) {
      WallTimer timer;
      SynopsisConfig config{type, 256, build_domain};
      auto builder = CreateSynopsisBuilder(config, sorted_values.size());
      for (int64_t value : sorted_values) builder->Add(value);
      auto synopsis = builder->Finish();
      PrintCell(timer.ElapsedMillis());
    }
    {
      WallTimer timer;
      auto synopsis = MaxDiffHistogram::Build(build_domain, 256, aggregate);
      PrintCell(timer.ElapsedMillis());
    }
    {
      WallTimer timer;
      auto synopsis = VOptimalHistogram::Build(build_domain, 256, aggregate);
      PrintCell(timer.ElapsedMillis());
    }
    EndRow();
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
