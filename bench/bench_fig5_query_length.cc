// Figure 5: estimation accuracy vs. FixedLength query size.
//
// Zipf-frequency datasets, 256-element synopses, query lengths 8 -> 256.
//
// Expected shape (paper §4.3.2): error grows with the query range, because
// longer ranges return a larger fraction of the dataset and the normalized
// L1 metric scales with it.

#include <cinttypes>

#include "bench_common.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const std::vector<uint64_t> lengths = {8, 32, 128, 256};

  std::printf("Figure 5: accuracy vs FixedLength query size (records=%" PRIu64
              ", Zipf frequencies, %zu-element synopses)\n",
              records, budget);

  PrintHeader("Fig 5  [normalized L1 error]",
              {"Spread", "Synopsis", "8", "32", "128", "256"});
  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = FrequencyDistribution::kZipf;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);

    std::vector<StatsRig::SynopsisSlot> slots;
    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      slots.push_back({SynopsisTypeToString(type), type, budget});
    }
    ScopedTempDir dir;
    StatsRig rig(dir.path(), spec.domain, slots,
                 std::make_shared<ConstantMergePolicy>(5),
                 records / 12 + 1);
    rig.IngestAll(dist.ExpandShuffled(7));
    rig.Flush();

    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      PrintCell(SpreadDistributionToString(spread));
      PrintCell(SynopsisTypeToString(type));
      for (uint64_t length : lengths) {
        auto query_set = QueryGenerator::Make(
            QueryType::kFixedLength, spec.domain, length, 99, queries);
        PrintCell(
            MeasureError(rig, SynopsisTypeToString(type), query_set, dist));
      }
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
