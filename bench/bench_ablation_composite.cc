// Ablation A4 (paper §5 future work): composite-key 2-D grid statistics vs
// the attribute-independence assumption.
//
// Without multidimensional statistics, an optimizer estimates a conjunctive
// predicate sel(A AND B) as sel(A) x sel(B) from two 1-D synopses. On
// correlated attributes that is arbitrarily wrong — the classic cause of
// join-order disasters. This bench ingests pairs with tunable correlation
// into a dataset with both per-field 1-D synopses and a composite <x, y>
// index carrying a 2-D grid, then compares conjunctive-estimate errors.

#include <cinttypes>

#include "bench_common.h"
#include "db/dataset.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 100000);
  const size_t queries = flags.GetU64("queries", 500);
  const size_t budget = flags.GetU64("budget", 256);
  const int log_domain = 10;  // 1024 x 1024 positions

  std::printf("Ablation A4: 2-D grid vs independence assumption "
              "(records=%" PRIu64 ", %zu-element budgets)\n",
              records, budget);

  PrintHeader("A4  [normalized L1 error of conjunctive estimates]",
              {"correlation", "independence", "grid2d", "improvement"});
  for (double correlation : {0.0, 0.5, 0.9, 1.0}) {
    ValueDomain domain(0, log_domain);
    FieldDef x, y;
    x.name = "x";
    x.type = FieldType::kInt32;
    x.indexed = true;
    x.domain = domain;
    y.name = "y";
    y.type = FieldType::kInt32;
    y.indexed = true;
    y.domain = domain;

    StatisticsCatalog catalog;
    LocalCatalogSink sink(&catalog);
    ScopedTempDir dir;
    DatasetOptions options;
    options.directory = dir.path();
    options.name = "pairs";
    options.schema = Schema({x, y});
    options.synopsis_type = SynopsisType::kEquiWidthHistogram;
    options.synopsis_budget = budget;
    options.memtable_max_entries = records / 8 + 1;
    options.merge_policy = std::make_shared<ConstantMergePolicy>(5);
    options.composite_indexes = {{"x", "y"}};
    options.sink = &sink;
    auto dataset_or = Dataset::Open(std::move(options));
    LSMSTATS_CHECK_OK(dataset_or.status());
    Dataset& dataset = *dataset_or.value();

    // y follows x with probability `correlation`, else uniform.
    Random rng(11);
    std::vector<std::pair<int64_t, int64_t>> points;
    for (uint64_t pk = 0; pk < records; ++pk) {
      int64_t vx = static_cast<int64_t>(rng.Uniform(1 << log_domain));
      int64_t vy = rng.Bernoulli(correlation)
                       ? vx
                       : static_cast<int64_t>(rng.Uniform(1 << log_domain));
      Record r;
      r.pk = static_cast<int64_t>(pk);
      r.fields = {vx, vy};
      LSMSTATS_CHECK_OK(dataset.Insert(r));
      points.push_back({vx, vy});
    }
    LSMSTATS_CHECK_OK(dataset.Flush());

    CardinalityEstimator estimator(&catalog, {});
    Random qrng(23);
    double err_independence = 0, err_grid = 0;
    for (size_t q = 0; q < queries; ++q) {
      int64_t span = 64 + static_cast<int64_t>(qrng.Uniform(192));
      int64_t lo0 = qrng.UniformInRange(0, (1 << log_domain) - span);
      int64_t lo1 = qrng.UniformInRange(0, (1 << log_domain) - span);
      int64_t hi0 = lo0 + span - 1, hi1 = lo1 + span - 1;

      uint64_t exact = 0;
      for (const auto& [px, py] : points) {
        if (px >= lo0 && px <= hi0 && py >= lo1 && py <= hi1) ++exact;
      }
      double sel_x =
          estimator.EstimateRange("pairs", "x", lo0, hi0) /
          static_cast<double>(records);
      double sel_y =
          estimator.EstimateRange("pairs", "y", lo1, hi1) /
          static_cast<double>(records);
      double independence = sel_x * sel_y * static_cast<double>(records);
      double grid = estimator.EstimateRange2D("pairs", "x+y", lo0, hi0, lo1,
                                              hi1);
      err_independence += std::abs(independence - static_cast<double>(exact));
      err_grid += std::abs(grid - static_cast<double>(exact));
    }
    err_independence /=
        static_cast<double>(queries) * static_cast<double>(records);
    err_grid /= static_cast<double>(queries) * static_cast<double>(records);
    PrintCell(correlation);
    PrintCell(err_independence);
    PrintCell(err_grid);
    PrintCell(err_grid > 0 ? err_independence / err_grid : 0.0);
    EndRow();
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
