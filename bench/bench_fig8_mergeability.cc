// Figure 8: query-time overhead — NoMerge (maximum component count) vs.
// Bulkload (single component).
//
// Zipf-frequency datasets are ingested twice: once through the feed path
// under the NoMerge policy (every memtable flush survives as its own
// component and synopsis) and once via bulkload (one component, one
// synopsis). The per-query estimation overhead is measured with the merged
// cache disabled, as in Figure 6b.
//
// Expected shape (paper §4.3.5): NoMerge consistently above Bulkload, but
// the difference is small for all synopsis types and both stay
// sub-millisecond — mergeability matters more for statistics storage than
// for query time.

#include <algorithm>
#include <cinttypes>
#include <memory>

#include "bench_common.h"
#include "lsm/merge_policy.h"

namespace lsmstats::bench {
namespace {

// --mode=policy: the accuracy-vs-policy experiment the paper lacks. One
// Zipf-random dataset with a 25%-delete update stream is ingested once per
// merge policy; deletes target entries flushed two memtables earlier, so
// they land as anti-matter that only a merge can reconcile. Per policy we
// report the normalized L1 estimate error per synopsis type, plus:
//
//   staleness   fraction of on-disk entries (and thus of the synopsis mass
//               the catalog mirrors) describing already-deleted data — a
//               dead positive entry or the anti-matter cancelling it:
//               2*anti / (positive + anti). Merges reconcile it to zero.
//   components  component count at measurement time (catalog fan-in).
//   merge_MB    cumulative merge output bytes — the write amplification
//               paid to keep staleness and fan-in down.
void RunPolicyAccuracy(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const size_t flush_count = flags.GetU64("flushes", 24);
  const uint64_t memtable_entries = records / flush_count + 1;
  const ValueDomain domain(0, log_domain);
  const size_t domain_size = size_t{1} << log_domain;

  DistributionSpec spec;
  spec.spread = SpreadDistribution::kZipfRandom;
  spec.frequency = FrequencyDistribution::kZipf;
  spec.num_values = values;
  spec.total_records = records;
  spec.domain = domain;
  spec.seed = 42;
  auto dist = SyntheticDistribution::Generate(spec);
  auto record_values = dist.ExpandShuffled(7);
  auto query_set = QueryGenerator::Make(QueryType::kFixedLength, domain, 128,
                                        99, queries);

  std::vector<StatsRig::SynopsisSlot> slots;
  for (SynopsisType type : EvaluatedSynopsisTypes()) {
    slots.push_back({SynopsisTypeToString(type), type, budget});
  }

  std::printf("Figure 8b: estimate accuracy vs merge policy (records=%" PRIu64
              ", 25%% deletes, Zipf-random spread, %zu-element synopses)\n",
              records, budget);

  struct PolicyPoint {
    std::string label;
    std::shared_ptr<MergePolicy> policy;
  };
  // Leveled knobs are scaled to the rig's component sizes so levels actually
  // form at bench scale (the MakeMergePolicyByName defaults target
  // production-sized components).
  LeveledPolicyOptions leveled;
  leveled.level0_limit = 4;
  leveled.base_level_bytes = 512 << 10;
  leveled.level_size_ratio = 4.0;
  LeveledPolicyOptions partitioned = leveled;
  partitioned.partition_split_bytes = 128 << 10;
  std::vector<PolicyPoint> points;
  points.push_back({"NoMerge", std::make_shared<NoMergePolicy>()});
  points.push_back({"Constant", std::make_shared<ConstantMergePolicy>(4)});
  points.push_back({"Prefix",
                    std::make_shared<PrefixMergePolicy>(1ull << 20, 5)});
  points.push_back({"Tiered", std::make_shared<TieredMergePolicy>()});
  points.push_back({"Leveled",
                    std::make_shared<LeveledMergePolicy>(leveled)});
  points.push_back({"Partitioned",
                    std::make_shared<LeveledMergePolicy>(partitioned)});

  std::vector<std::string> columns = {"Policy"};
  for (const auto& slot : slots) columns.push_back(slot.label);
  columns.insert(columns.end(),
                 {"staleness", "components", "merge_MB"});
  PrintHeader("Fig 8b  [normalized L1 error]", columns);

  for (const PolicyPoint& point : points) {
    ScopedTempDir dir;
    StatsRig rig(dir.path(), domain, slots, point.policy, memtable_entries);

    // Insert stream with 25% deletes lagging two memtables behind, so every
    // delete targets an already-flushed entry and must travel as anti-matter.
    const uint64_t lag = 2 * memtable_entries;
    std::vector<int64_t> live(domain_size, 0);
    uint64_t live_total = 0;
    for (uint64_t pk = 0; pk < record_values.size(); ++pk) {
      const int64_t value = record_values[pk];
      rig.Ingest(value);
      live[static_cast<size_t>(value)] += 1;
      ++live_total;
      if (pk % 4 == 3 && pk >= lag) {
        const uint64_t victim = pk - lag;
        const int64_t victim_value = record_values[victim];
        rig.Delete(victim_value, static_cast<int64_t>(victim));
        live[static_cast<size_t>(victim_value)] -= 1;
        --live_total;
      }
    }
    rig.Flush();

    std::vector<uint64_t> prefix(domain_size + 1, 0);
    for (size_t v = 0; v < domain_size; ++v) {
      prefix[v + 1] = prefix[v] + static_cast<uint64_t>(live[v]);
    }
    auto exact = [&](const RangeQuery& q) -> uint64_t {
      int64_t lo = std::max<int64_t>(q.lo, 0);
      int64_t hi = std::min<int64_t>(q.hi,
                                     static_cast<int64_t>(domain_size) - 1);
      if (hi < lo) return 0;
      return prefix[static_cast<size_t>(hi) + 1] -
             prefix[static_cast<size_t>(lo)];
    };

    PrintCell(point.label);
    for (const auto& slot : slots) {
      PrintCell(NormalizedL1Error(
          query_set,
          [&](const RangeQuery& q) {
            return rig.Estimate(slot.label, q.lo, q.hi);
          },
          exact, live_total));
    }
    HealthSnapshot health = rig.tree()->Health();
    uint64_t positive = 0;
    uint64_t anti = 0;
    for (const LevelStats& level : health.levels) {
      positive += level.records;
      anti += level.anti_matter;
    }
    PrintCell(positive + anti == 0
                  ? 0.0
                  : static_cast<double>(2 * anti) /
                        static_cast<double>(positive + anti));
    PrintCell(static_cast<double>(rig.tree()->ComponentCount()));
    PrintCell(static_cast<double>(health.merge_bytes_written) / (1 << 20));
    EndRow();
  }
}

void Run(const Flags& flags) {
  if (flags.GetString("mode", "paper") == "policy") {
    RunPolicyAccuracy(flags);
    return;
  }
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const size_t flush_count = flags.GetU64("flushes", 24);
  // --merge_policy= swaps the feed rig's policy (paper default: NoMerge).
  const std::string forced_policy = flags.GetString("merge_policy", "");
  const std::string feed_label =
      forced_policy.empty() ? "NoMerge" : forced_policy;

  std::printf("Figure 8: query-time overhead, %s vs Bulkload "
              "(records=%" PRIu64 ", Zipf frequencies, %zu-element "
              "synopses, ~%zu NoMerge components)\n",
              feed_label.c_str(), records, budget, flush_count);

  PrintHeader("Fig 8  [ms per estimate]",
              {"Spread", "Synopsis", feed_label, "Bulkload", "components"});
  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = FrequencyDistribution::kZipf;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);
    auto record_values = dist.ExpandShuffled(7);
    auto query_set = QueryGenerator::Make(QueryType::kFixedLength,
                                          spec.domain, 128, 99, queries);

    std::vector<StatsRig::SynopsisSlot> slots;
    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      slots.push_back({SynopsisTypeToString(type), type, budget});
    }

    // NoMerge: feed-style ingestion, every flush a component (or whatever
    // --merge_policy= forces instead).
    std::shared_ptr<MergePolicy> feed_policy;
    if (forced_policy.empty()) {
      feed_policy = std::make_shared<NoMergePolicy>();
    } else {
      feed_policy = MakeMergePolicyByName(forced_policy);
      LSMSTATS_CHECK(feed_policy != nullptr);  // unknown policy name
    }
    ScopedTempDir nomerge_dir;
    StatsRig nomerge(nomerge_dir.path(), spec.domain, slots,
                     std::move(feed_policy), records / flush_count + 1);
    nomerge.IngestAll(record_values);
    nomerge.Flush();

    // Bulkload: one pre-sorted component.
    ScopedTempDir bulk_dir;
    StatsRig bulk(bulk_dir.path(), spec.domain, slots,
                  std::make_shared<NoMergePolicy>(), records + 1);
    {
      std::vector<Entry> entries;
      entries.reserve(record_values.size());
      std::vector<std::pair<int64_t, int64_t>> pairs;
      pairs.reserve(record_values.size());
      for (size_t pk = 0; pk < record_values.size(); ++pk) {
        pairs.push_back({record_values[pk], static_cast<int64_t>(pk)});
      }
      std::sort(pairs.begin(), pairs.end());
      for (const auto& [sk, pk] : pairs) {
        entries.push_back({SecondaryKey(sk, pk), "", false});
      }
      VectorEntryCursor cursor(std::move(entries));
      LSMSTATS_CHECK_OK(
          bulk.tree()->Bulkload(&cursor, record_values.size()));
    }

    CardinalityEstimator::Options options;
    options.enable_merged_cache = false;
    CardinalityEstimator nomerge_estimator(nomerge.catalog(), options);
    CardinalityEstimator bulk_estimator(bulk.catalog(), options);

    auto warm_up = [&](CardinalityEstimator& estimator) {
      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        estimator.EstimateRangePartition(
            {"rig", SynopsisTypeToString(type), 0}, 0, 1);
      }
    };
    warm_up(nomerge_estimator);
    warm_up(bulk_estimator);

    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      StatisticsKey key{"rig", SynopsisTypeToString(type), 0};
      auto time_one = [&](CardinalityEstimator& estimator) {
        WallTimer timer;
        double checksum = 0;
        for (const RangeQuery& q : query_set) {
          checksum += estimator.EstimateRangePartition(key, q.lo, q.hi);
        }
        (void)checksum;
        return timer.ElapsedMillis() / static_cast<double>(query_set.size());
      };
      PrintCell(SpreadDistributionToString(spread));
      PrintCell(SynopsisTypeToString(type));
      PrintCell(time_one(nomerge_estimator));
      PrintCell(time_one(bulk_estimator));
      PrintCell(static_cast<double>(nomerge.tree()->ComponentCount()));
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
