// Figure 8: query-time overhead — NoMerge (maximum component count) vs.
// Bulkload (single component).
//
// Zipf-frequency datasets are ingested twice: once through the feed path
// under the NoMerge policy (every memtable flush survives as its own
// component and synopsis) and once via bulkload (one component, one
// synopsis). The per-query estimation overhead is measured with the merged
// cache disabled, as in Figure 6b.
//
// Expected shape (paper §4.3.5): NoMerge consistently above Bulkload, but
// the difference is small for all synopsis types and both stay
// sub-millisecond — mergeability matters more for statistics storage than
// for query time.

#include <cinttypes>

#include "bench_common.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const size_t flush_count = flags.GetU64("flushes", 24);

  std::printf("Figure 8: query-time overhead, NoMerge vs Bulkload "
              "(records=%" PRIu64 ", Zipf frequencies, %zu-element "
              "synopses, ~%zu NoMerge components)\n",
              records, budget, flush_count);

  PrintHeader("Fig 8  [ms per estimate]",
              {"Spread", "Synopsis", "NoMerge", "Bulkload", "components"});
  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = FrequencyDistribution::kZipf;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);
    auto record_values = dist.ExpandShuffled(7);
    auto query_set = QueryGenerator::Make(QueryType::kFixedLength,
                                          spec.domain, 128, 99, queries);

    std::vector<StatsRig::SynopsisSlot> slots;
    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      slots.push_back({SynopsisTypeToString(type), type, budget});
    }

    // NoMerge: feed-style ingestion, every flush a component.
    ScopedTempDir nomerge_dir;
    StatsRig nomerge(nomerge_dir.path(), spec.domain, slots,
                     std::make_shared<NoMergePolicy>(),
                     records / flush_count + 1);
    nomerge.IngestAll(record_values);
    nomerge.Flush();

    // Bulkload: one pre-sorted component.
    ScopedTempDir bulk_dir;
    StatsRig bulk(bulk_dir.path(), spec.domain, slots,
                  std::make_shared<NoMergePolicy>(), records + 1);
    {
      std::vector<Entry> entries;
      entries.reserve(record_values.size());
      std::vector<std::pair<int64_t, int64_t>> pairs;
      pairs.reserve(record_values.size());
      for (size_t pk = 0; pk < record_values.size(); ++pk) {
        pairs.push_back({record_values[pk], static_cast<int64_t>(pk)});
      }
      std::sort(pairs.begin(), pairs.end());
      for (const auto& [sk, pk] : pairs) {
        entries.push_back({SecondaryKey(sk, pk), "", false});
      }
      VectorEntryCursor cursor(std::move(entries));
      LSMSTATS_CHECK_OK(
          bulk.tree()->Bulkload(&cursor, record_values.size()));
    }

    CardinalityEstimator::Options options;
    options.enable_merged_cache = false;
    CardinalityEstimator nomerge_estimator(nomerge.catalog(), options);
    CardinalityEstimator bulk_estimator(bulk.catalog(), options);

    auto warm_up = [&](CardinalityEstimator& estimator) {
      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        estimator.EstimateRangePartition(
            {"rig", SynopsisTypeToString(type), 0}, 0, 1);
      }
    };
    warm_up(nomerge_estimator);
    warm_up(bulk_estimator);

    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      StatisticsKey key{"rig", SynopsisTypeToString(type), 0};
      auto time_one = [&](CardinalityEstimator& estimator) {
        WallTimer timer;
        double checksum = 0;
        for (const RangeQuery& q : query_set) {
          checksum += estimator.EstimateRangePartition(key, q.lo, q.hi);
        }
        (void)checksum;
        return timer.ElapsedMillis() / static_cast<double>(query_set.size());
      };
      PrintCell(SpreadDistributionToString(spread));
      PrintCell(SynopsisTypeToString(type));
      PrintCell(time_one(nomerge_estimator));
      PrintCell(time_one(bulk_estimator));
      PrintCell(static_cast<double>(nomerge.tree()->ComponentCount()));
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
