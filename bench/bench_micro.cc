// Microbenchmarks (google-benchmark): per-operation costs of the building
// blocks on the ingestion critical path and the query optimization path.
//
// The paper's central overhead claim (§4.2) is that synopsis construction is
// cheap enough to ride on LSM events; these benchmarks show the per-record
// builder cost next to the per-record LSM write cost, and the per-query
// estimation cost next to it all.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>

#include "common/coding.h"
#include "common/env.h"
#include "common/error_taxonomy.h"
#include "common/mutex.h"
#include "common/random.h"
#include "lsm/disk_component.h"
#include "lsm/format/block.h"
#include "lsm/format/block_cache.h"
#include "lsm/format/compression.h"
#include "lsm/lsm_tree.h"
#include "lsm/memtable.h"
#include "stats/cardinality_estimator.h"
#include "stats/statistics_collector.h"
#include "synopsis/builder.h"
#include "synopsis/wavelet.h"
#include "workload/distribution.h"

namespace lsmstats {
namespace {

const ValueDomain kDomain(0, 20);

std::vector<int64_t> SortedValues(size_t n) {
  DistributionSpec spec;
  spec.spread = SpreadDistribution::kZipfRandom;
  spec.frequency = FrequencyDistribution::kZipf;
  spec.num_values = n / 20 + 1;
  spec.total_records = n;
  spec.domain = kDomain;
  auto dist = SyntheticDistribution::Generate(spec);
  std::vector<int64_t> values = dist.ExpandShuffled(3);
  std::sort(values.begin(), values.end());
  return values;
}

// ----------------------------------------------------- synopsis builders

void BM_SynopsisBuild(benchmark::State& state, SynopsisType type) {
  const size_t n = 100000;
  std::vector<int64_t> values = SortedValues(n);
  for (auto _ : state) {
    SynopsisConfig config{type, 256, kDomain};
    auto builder = CreateSynopsisBuilder(config, n);
    for (int64_t v : values) builder->Add(v);
    benchmark::DoNotOptimize(builder->Finish());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}

BENCHMARK_CAPTURE(BM_SynopsisBuild, EquiWidth,
                  SynopsisType::kEquiWidthHistogram);
BENCHMARK_CAPTURE(BM_SynopsisBuild, EquiHeight,
                  SynopsisType::kEquiHeightHistogram);
BENCHMARK_CAPTURE(BM_SynopsisBuild, Wavelet, SynopsisType::kWavelet);
BENCHMARK_CAPTURE(BM_SynopsisBuild, GKQuantile, SynopsisType::kGKQuantile);

// ---------------------------------------------------------------- mutex

// The annotated Mutex wraps std::mutex and, in release builds (this bench
// runs under the default RelWithDebInfo preset, where the lock-rank checker
// is compiled out), must cost exactly an uncontended std::mutex lock/unlock.
// A regression here means the checker leaked into the shipped Lock/Unlock —
// the CI `nm` guard catches the symbols, this catches the cycles.
void BM_MutexLockUnlock(benchmark::State& state) {
  Mutex mu(LockRank::kLeaf, "bench_micro");
  for (auto _ : state) {
    MutexLock lock(&mu);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexLockUnlock);

// ------------------------------------------------------------- memtable

void BM_MemTablePut(benchmark::State& state) {
  Random rng(5);
  MemTable memtable;
  int64_t pk = 0;
  for (auto _ : state) {
    memtable.Put(SecondaryKey(static_cast<int64_t>(rng.Uniform(1 << 20)),
                              pk++),
                 "", true);
    if (memtable.EntryCount() >= 1 << 16) {
      state.PauseTiming();
      memtable.Clear();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemTablePut);

// ------------------------------------------------------------- lsm write

void BM_LsmPutWithStats(benchmark::State& state, SynopsisType type) {
  char tmpl[] = "/tmp/lsmstats_micro_XXXXXX";
  std::string dir = ::mkdtemp(tmpl);
  StatisticsCatalog catalog;
  LocalCatalogSink sink(&catalog);
  LsmTreeOptions options;
  options.directory = dir;
  options.memtable_max_entries = 1 << 14;
  auto tree_or = LsmTree::Open(options);
  auto tree = std::move(tree_or).value();
  StatisticsCollector collector({"micro", "f", 0},
                                SynopsisConfig{type, 256, kDomain}, &sink);
  tree->AddListener(&collector);
  Random rng(5);
  int64_t pk = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->Put(SecondaryKey(static_cast<int64_t>(rng.Uniform(1 << 20)),
                               pk++),
                  "", true));
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK_CAPTURE(BM_LsmPutWithStats, NoStats, SynopsisType::kNone);
BENCHMARK_CAPTURE(BM_LsmPutWithStats, Wavelet, SynopsisType::kWavelet);

// -------------------------------------------------------------- estimate

void BM_Estimate(benchmark::State& state, SynopsisType type,
                 bool enable_cache) {
  const size_t n = 100000;
  std::vector<int64_t> values = SortedValues(n);
  StatisticsCatalog catalog;
  StatisticsKey key{"micro", "f", 0};
  // 16 component synopses.
  const size_t kComponents = 16;
  size_t chunk = values.size() / kComponents;
  for (size_t c = 0; c < kComponents; ++c) {
    SynopsisConfig config{type, 256, kDomain};
    auto builder = CreateSynopsisBuilder(config, chunk);
    std::vector<int64_t> slice(values.begin() + c * chunk,
                               values.begin() + (c + 1) * chunk);
    std::sort(slice.begin(), slice.end());
    for (int64_t v : slice) builder->Add(v);
    SynopsisEntry entry;
    entry.component_id = c + 1;
    entry.timestamp = c + 1;
    entry.synopsis =
        std::shared_ptr<const Synopsis>(builder->Finish().release());
    catalog.Register(key, std::move(entry), {});
  }
  CardinalityEstimator::Options options;
  options.enable_merged_cache = enable_cache;
  CardinalityEstimator estimator(&catalog, options);
  estimator.EstimateRangePartition(key, 0, 1);  // warm the cache
  Random rng(9);
  for (auto _ : state) {
    int64_t lo = static_cast<int64_t>(rng.Uniform((1 << 20) - 128));
    benchmark::DoNotOptimize(
        estimator.EstimateRangePartition(key, lo, lo + 127));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_Estimate, EquiWidth_separate,
                  SynopsisType::kEquiWidthHistogram, false);
BENCHMARK_CAPTURE(BM_Estimate, EquiWidth_cached,
                  SynopsisType::kEquiWidthHistogram, true);
BENCHMARK_CAPTURE(BM_Estimate, EquiHeight_separate,
                  SynopsisType::kEquiHeightHistogram, false);
BENCHMARK_CAPTURE(BM_Estimate, Wavelet_separate, SynopsisType::kWavelet,
                  false);
BENCHMARK_CAPTURE(BM_Estimate, Wavelet_cached, SynopsisType::kWavelet, true);

// ----------------------------------------------------------- block layer

// One block's worth of sorted secondary-index entry bytes.
std::string BlockPayload(size_t target_bytes) {
  Encoder enc;
  int64_t pk = 0;
  while (enc.size() < target_bytes) {
    Entry entry;
    entry.key = SecondaryKey(pk / 3, pk);
    ++pk;
    EncodeEntry(entry, &enc);
  }
  return std::string(enc.buffer());
}

void BM_BlockEncode(benchmark::State& state, const char* codec_name) {
  const CompressionCodec* codec = CodecByName(codec_name);
  std::string payload = BlockPayload(4096);
  for (auto _ : state) {
    BlockBuilder builder(codec, 4096);
    builder.Add(payload);
    benchmark::DoNotOptimize(builder.Seal());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK_CAPTURE(BM_BlockEncode, None, "none");
BENCHMARK_CAPTURE(BM_BlockEncode, Delta, "delta");

void BM_BlockDecode(benchmark::State& state, const char* codec_name) {
  std::string payload = BlockPayload(4096);
  BlockBuilder builder(CodecByName(codec_name), 4096);
  builder.Add(payload);
  std::string stored = builder.Seal();
  std::string raw;
  for (auto _ : state) {
    raw.clear();
    auto status = DecodeBlock(stored, "bench", &raw);
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * payload.size()));
}
BENCHMARK_CAPTURE(BM_BlockDecode, None, "none");
BENCHMARK_CAPTURE(BM_BlockDecode, Delta, "delta");

// Point lookups against one on-disk component: cold (no cache — every Get
// reads and decodes its block from disk) vs. cached (the working set stays
// in a shared BlockCache).
void BM_ComponentGet(benchmark::State& state, bool cached) {
  char tmpl[] = "/tmp/lsmstats_micro_XXXXXX";
  std::string dir = ::mkdtemp(tmpl);
  const int64_t kEntries = 64 * 1024;
  BlockCache cache(64 << 20);
  DiskComponentReadOptions read_options;
  if (cached) read_options.block_cache = &cache;
  DiskComponentBuilder builder(nullptr, dir + "/c.cmp", kEntries,
                               EnvironmentWriteOptions(), read_options);
  for (int64_t k = 0; k < kEntries; ++k) {
    benchmark::DoNotOptimize(
        builder.Add(Entry{SecondaryKey(k, k), "", false}));
  }
  auto component_or = builder.Finish(1, 1);
  auto component = std::move(component_or).value();
  Random rng(13);
  Entry found;
  for (auto _ : state) {
    int64_t k = static_cast<int64_t>(rng.Uniform(kEntries));
    benchmark::DoNotOptimize(component->Get(SecondaryKey(k, k), &found));
  }
  state.SetItemsProcessed(state.iterations());
  component.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK_CAPTURE(BM_ComponentGet, Cold, false);
BENCHMARK_CAPTURE(BM_ComponentGet, Cached, true);

// ------------------------------------------------------------------- wal

void BM_WalFrameEncodeSingle(benchmark::State& state) {
  std::string value(100, 'x');
  std::string out;
  int64_t pk = 0;
  for (auto _ : state) {
    out.clear();
    EncodeWalRecordFrame(WalOp::kPut, PrimaryKey(pk++), value, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalFrameEncodeSingle);

// One batch frame covering `range(0)` records: a single length/CRC header
// and one CRC pass over the whole payload, vs. one per record above.
void BM_WalFrameEncodeBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::string value(100, 'x');
  WriteBatch batch;
  for (size_t i = 0; i < n; ++i) {
    batch.Put(PrimaryKey(static_cast<int64_t>(i)), value, true);
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    EncodeWalBatchFrame(batch, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_WalFrameEncodeBatch)->Arg(16)->Arg(256);

// Acked-durable Put at ONE writer, group commit off vs on. With a single
// writer the group path self-elects without stalling (the group-size hint
// decays to 1), so these two must cost the same — any gap is leader-elect
// overhead leaking onto the uncontended path. Prefers tmpfs (/dev/shm) so
// the fsync is nearly free and the protocol cost isn't buried under device
// latency; fixed iteration count keeps the memtable from rotating mid-run.
void BM_WalUncontendedPut(benchmark::State& state, bool group_commit) {
  std::string tmpl_str =
      (std::filesystem::is_directory("/dev/shm") ? "/dev/shm" : "/tmp") +
      std::string("/lsmstats_micro_XXXXXX");
  std::vector<char> tmpl(tmpl_str.begin(), tmpl_str.end());
  tmpl.push_back('\0');
  std::string dir = ::mkdtemp(tmpl.data());
  LsmTreeOptions options;
  options.directory = dir;
  options.memtable_max_entries = 1 << 20;
  options.wal = true;
  options.wal_sync_mode = WalSyncMode::kEveryRecord;
  options.wal_group_commit = group_commit;
  auto tree = std::move(LsmTree::Open(options)).value();
  std::string value(100, 'x');
  int64_t pk = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Put(PrimaryKey(pk++), value, true));
  }
  state.SetItemsProcessed(state.iterations());
  tree.reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK_CAPTURE(BM_WalUncontendedPut, SingleCommit, false)
    ->Iterations(1 << 15);
BENCHMARK_CAPTURE(BM_WalUncontendedPut, GroupCommit, true)
    ->Iterations(1 << 15);

// --------------------------------------------------- wavelet reconstruct

void BM_WaveletPointReconstruction(benchmark::State& state) {
  std::vector<int64_t> values = SortedValues(100000);
  SynopsisConfig config{SynopsisType::kWavelet, 256, kDomain};
  auto builder = CreateSynopsisBuilder(config, values.size());
  for (int64_t v : values) builder->Add(v);
  auto synopsis = builder->Finish();
  auto* wavelet = static_cast<WaveletSynopsis*>(synopsis.get());
  Random rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wavelet->ReconstructPoint(rng.Uniform(1ULL << 20)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaveletPointReconstruction);

// ------------------------------------------------------ error handling

// The free-space watchdog runs one probe per flush/merge/WAL-segment
// creation; this prices that statvfs call so the "degrade before writing"
// check is visibly cheap next to the component build it guards.
void BM_FreeSpaceProbe(benchmark::State& state) {
  Env* env = Env::Default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env->GetFreeSpace("/tmp"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreeSpaceProbe);

// Severity classification sits on every background-error path (and on each
// inline retry decision); it should cost a branch, not a lookup.
void BM_ClassifySeverity(benchmark::State& state) {
  const Status statuses[4] = {
      Status::OK(), Status::IOError("enospc"), Status::Corruption("crc"),
      Status::Internal("bug")};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifySeverity(statuses[i++ & 3]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifySeverity);

}  // namespace
}  // namespace lsmstats

BENCHMARK_MAIN();
