// Figure 2: ingestion overhead of statistics collection.
//
// Measures the total time to ingest a tweet-like dataset (a) via bulkload,
// which builds one component per index bottom-up, and (b) through data
// feeds — a push-based socket feed and a pull-based file feed — which drive
// the full spectrum of LSM lifecycle events (flushes + merges). Each mode
// runs with statistics collection disabled (NoStats) and with each of the
// three synopsis types.
//
// Expected shape (paper §4.2): no significant overhead from any
// statistics-gathering algorithm relative to the NoStats baseline — the
// streaming builders ride along with work the LSM events do anyway.

#include <algorithm>
#include <cinttypes>
#include <thread>

#include "bench_common.h"
#include "db/dataset.h"
#include "lsm/merge_policy.h"
#include "lsm/scheduler.h"
#include "workload/feed.h"
#include "workload/tweets.h"

namespace lsmstats::bench {
namespace {

std::vector<SynopsisType> AllModes() {
  return {SynopsisType::kNone, SynopsisType::kEquiWidthHistogram,
          SynopsisType::kEquiHeightHistogram, SynopsisType::kWavelet};
}

// Storage knobs shared by every dataset this binary opens. The defaults
// ("none", no cache, no WAL) reproduce the paper figures bit-for-bit;
// --compression= and --block_cache_mb= measure the ingestion cost of the
// block codec and the shared read cache, and --wal=1 (with
// --wal_sync=none|flush-only|every-record) the durability cost of the
// write-ahead log, on top.
struct StorageConfig {
  std::string compression;
  uint64_t block_cache_mb = 0;
  int wal = -1;  // -1 = unset (environment default), 0 = off, 1 = on
  std::string wal_sync;
  // --wal_group_commit=1 amortizes every-record fsyncs across concurrent
  // writers; --shared_wal=1 gives the dataset one log stream for all of its
  // index trees instead of one per tree.
  int wal_group_commit = -1;
  bool shared_wal = false;
  // --merge_policy=nomerge|constant|prefix|tiered|leveled|partitioned
  // swaps the compaction policy every dataset runs under; empty keeps the
  // paper-mode Tiered default.
  std::string merge_policy;
};

std::unique_ptr<Dataset> OpenDataset(const std::string& dir,
                                     const ValueDomain& domain,
                                     SynopsisType type, size_t budget,
                                     uint64_t memtable_entries,
                                     SynopsisSink* sink,
                                     const StorageConfig& storage,
                                     BackgroundScheduler* scheduler = nullptr) {
  DatasetOptions options;
  options.directory = dir;
  options.name = "tweets";
  options.schema = TweetSchema(domain);
  options.synopsis_type = type;
  options.synopsis_budget = budget;
  options.memtable_max_entries = memtable_entries;
  if (storage.merge_policy.empty()) {
    options.merge_policy = std::make_shared<TieredMergePolicy>();
  } else {
    options.merge_policy = MakeMergePolicyByName(storage.merge_policy);
    LSMSTATS_CHECK(options.merge_policy != nullptr);  // unknown policy name
  }
  options.sink = type == SynopsisType::kNone ? nullptr : sink;
  options.scheduler = scheduler;
  options.compression = storage.compression;
  options.block_cache_mb = storage.block_cache_mb;
  if (storage.wal >= 0) options.wal = storage.wal != 0;
  if (!storage.wal_sync.empty()) {
    auto sync_mode = WalSyncModeFromString(storage.wal_sync);
    LSMSTATS_CHECK_OK(sync_mode.status());
    options.wal_sync_mode = *sync_mode;
  }
  if (storage.wal_group_commit >= 0) {
    options.wal_group_commit = storage.wal_group_commit != 0;
  }
  options.shared_wal = storage.shared_wal;
  auto dataset = Dataset::Open(std::move(options));
  LSMSTATS_CHECK_OK(dataset.status());
  return std::move(dataset).value();
}

// Multi-writer WAL commit-path ingest, measured at the LsmTree level — the
// tree is internally synchronized, so concurrent writers contend on the real
// commit path (Dataset above it keeps its documented single-logical-writer
// contract). Each writer ingests its own key range in groups of `batch`
// records (1 = plain Put, >1 = one atomic WriteBatch per group). The
// memtable bound keeps flushes off the timed path: this measures log
// appends, fsyncs, and leader election, nothing else.
struct CommitRunResult {
  double seconds = 0;
  uint64_t syncs = 0;
  uint64_t logged = 0;
};

CommitRunResult MultiWriterWalIngest(uint64_t records, size_t writers,
                                     size_t batch, size_t payload, int wal,
                                     const std::string& wal_sync,
                                     bool group_commit) {
  ScopedTempDir dir;
  LsmTreeOptions options;
  options.directory = dir.path();
  options.name = "walbench";
  options.memtable_max_entries = records + 1;
  options.memtable_max_bytes = (records + 1) * (payload + 64);
  options.wal = wal > 0;
  if (!wal_sync.empty()) {
    auto sync_mode = WalSyncModeFromString(wal_sync);
    LSMSTATS_CHECK_OK(sync_mode.status());
    options.wal_sync_mode = *sync_mode;
  }
  options.wal_group_commit = group_commit;
  auto tree_or = LsmTree::Open(options);
  LSMSTATS_CHECK_OK(tree_or.status());
  auto& tree = *tree_or;

  const uint64_t per_writer = records / writers;
  const std::string value(payload, 'x');
  CommitRunResult result;
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      const int64_t base = static_cast<int64_t>(w * per_writer);
      for (uint64_t i = 0; i < per_writer; i += batch) {
        const uint64_t end = std::min(i + batch, per_writer);
        if (batch <= 1) {
          LSMSTATS_CHECK_OK(
              tree->Put(PrimaryKey(base + static_cast<int64_t>(i)), value,
                        true));
        } else {
          WriteBatch write_batch;
          for (uint64_t k = i; k < end; ++k) {
            write_batch.Put(PrimaryKey(base + static_cast<int64_t>(k)),
                            value, true);
          }
          LSMSTATS_CHECK_OK(tree->Write(std::move(write_batch)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  result.seconds = timer.ElapsedSeconds();
  result.syncs = tree->WalSyncCount();
  result.logged = tree->WalRecordsLogged();
  return result;
}

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 30000);
  const size_t payload = flags.GetU64("payload", 1000);
  const size_t budget = flags.GetU64("budget", 256);
  const uint64_t memtable_entries = flags.GetU64("memtable", 4096);
  const std::string mode = flags.GetString("mode", "all");
  StorageConfig storage;
  storage.compression = flags.GetString("compression", "");
  storage.block_cache_mb = flags.GetU64("block_cache_mb", 0);
  storage.wal = static_cast<int>(
      flags.GetU64("wal", static_cast<uint64_t>(-1)));
  storage.wal_sync = flags.GetString("wal_sync", "");
  storage.wal_group_commit = static_cast<int>(
      flags.GetU64("wal_group_commit", static_cast<uint64_t>(-1)));
  storage.shared_wal = flags.GetU64("shared_wal", 0) != 0;
  storage.merge_policy = flags.GetString("merge_policy", "");
  const size_t writers = flags.GetU64("writers", 8);
  const size_t batch = flags.GetU64("batch", 1);
  const ValueDomain domain(0, 16);

  DistributionSpec spec;
  spec.spread = SpreadDistribution::kZipfRandom;
  spec.frequency = FrequencyDistribution::kZipf;
  spec.num_values = 2000;
  spec.total_records = records;
  spec.domain = domain;
  auto dist = SyntheticDistribution::Generate(spec);

  std::printf("Figure 2: ingestion time (records=%" PRIu64
              ", ~%zu B payloads, %zu-element synopses)\n",
              records, payload, budget);
  if (!storage.compression.empty() || storage.block_cache_mb > 0 ||
      storage.wal >= 0) {
    std::printf("storage: compression=%s block_cache=%" PRIu64
                "MiB wal=%s sync=%s\n",
                storage.compression.empty() ? "none"
                                            : storage.compression.c_str(),
                storage.block_cache_mb,
                storage.wal > 0 ? "on" : "off",
                storage.wal_sync.empty() ? "flush-only"
                                         : storage.wal_sync.c_str());
  }
  if (!storage.merge_policy.empty()) {
    std::printf("merge policy: %s\n", storage.merge_policy.c_str());
  }

  auto make_records = [&]() {
    TweetGenerator generator(dist, payload, 7);
    std::vector<Record> result;
    result.reserve(records);
    while (generator.HasNext()) result.push_back(generator.Next());
    return result;
  };
  std::vector<Record> base_records = make_records();

  // Untimed warm-up so the first measured configuration does not absorb
  // cold page-cache and allocator costs.
  {
    StatisticsCatalog catalog;
    LocalCatalogSink sink(&catalog);
    ScopedTempDir dir;
    auto dataset = OpenDataset(dir.path(), domain, SynopsisType::kNone,
                               budget, memtable_entries, &sink, storage);
    std::vector<Record> warmup = base_records;
    LSMSTATS_CHECK_OK(dataset->Load(std::move(warmup)));
  }

  // On-disk component bytes — what the --compression= codec shrinks. The
  // secondary index (pure <SK, PK> keys) is reported separately because the
  // delta codec compresses keys only; the primary's ~1 KB opaque payloads
  // stay verbatim and dominate the total.
  auto tree_bytes = [](const LsmTree* tree) {
    uint64_t total = 0;
    for (const auto& meta : tree->ComponentsMetadata()) {
      total += meta.file_size;
    }
    return total;
  };

  if (mode == "all" || mode == "bulkload") {
    PrintHeader("Fig 2a: bulkload ingestion",
                {"Synopsis", "seconds", "us/record", "disk_MB", "sk_KB",
                 "cache_hit%"});
    for (SynopsisType type : AllModes()) {
      StatisticsCatalog catalog;
      LocalCatalogSink sink(&catalog);
      ScopedTempDir dir;
      auto dataset = OpenDataset(dir.path(), domain, type, budget,
                                 memtable_entries, &sink, storage);
      std::vector<Record> sorted = base_records;  // already pk-ascending
      WallTimer timer;
      LSMSTATS_CHECK_OK(dataset->Load(std::move(sorted)));
      double seconds = timer.ElapsedSeconds();
      PrintCell(SynopsisTypeToString(type));
      PrintCell(seconds);
      PrintCell(seconds * 1e6 / static_cast<double>(records));
      uint64_t sk_bytes = 0;
      if (LsmTree* index = dataset->secondary(kTweetMetricField)) {
        sk_bytes = tree_bytes(index);
      }
      PrintCell(static_cast<double>(tree_bytes(dataset->primary()) +
                                    sk_bytes) /
                (1 << 20));
      PrintCell(static_cast<double>(sk_bytes) / (1 << 10));
      if (dataset->block_cache() != nullptr) {
        // Read-back phase (point lookups over half the key space, twice) so
        // the shared cache reports a steady-state hit rate.
        for (int pass = 0; pass < 2; ++pass) {
          for (uint64_t pk = 0; pk < records; pk += 2) {
            auto record = dataset->Get(static_cast<int64_t>(pk));
            LSMSTATS_CHECK_OK(record.status());
          }
        }
        BlockCache::Stats stats = dataset->block_cache()->GetStats();
        PrintCell(100.0 * static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses));
      } else {
        PrintCell("-");
      }
      EndRow();
    }
  }

  if (mode == "all" || mode == "feed") {
    PrintHeader("Fig 2b: feed ingestion",
                {"Synopsis", "socket_sec", "file_sec", "us/rec_socket",
                 "us/rec_file"});
    for (SynopsisType type : AllModes()) {
      double socket_seconds = 0;
      double file_seconds = 0;
      {
        StatisticsCatalog catalog;
        LocalCatalogSink sink(&catalog);
        ScopedTempDir dir;
        auto dataset = OpenDataset(dir.path(), domain, type, budget,
                                   memtable_entries, &sink, storage);
        auto feed = SocketFeed::Start(base_records,
                                      base_records[0].fields.size());
        LSMSTATS_CHECK_OK(feed.status());
        WallTimer timer;
        FeedOp op;
        while ((*feed)->Next(&op)) {
          LSMSTATS_CHECK_OK(dataset->Insert(op.record));
        }
        LSMSTATS_CHECK_OK(dataset->Flush());
        socket_seconds = timer.ElapsedSeconds();
        LSMSTATS_CHECK_OK((*feed)->status());
      }
      {
        StatisticsCatalog catalog;
        LocalCatalogSink sink(&catalog);
        ScopedTempDir dir;
        auto dataset = OpenDataset(dir.path(), domain, type, budget,
                                   memtable_entries, &sink, storage);
        auto feed = FileFeed::Create(dir.path() + "/feed.dat", base_records,
                                     base_records[0].fields.size());
        LSMSTATS_CHECK_OK(feed.status());
        WallTimer timer;
        FeedOp op;
        while ((*feed)->Next(&op)) {
          LSMSTATS_CHECK_OK(dataset->Insert(op.record));
        }
        LSMSTATS_CHECK_OK(dataset->Flush());
        file_seconds = timer.ElapsedSeconds();
      }
      PrintCell(SynopsisTypeToString(type));
      PrintCell(socket_seconds);
      PrintCell(file_seconds);
      PrintCell(socket_seconds * 1e6 / static_cast<double>(records));
      PrintCell(file_seconds * 1e6 / static_cast<double>(records));
      EndRow();
    }
  }

  // Concurrent ingestion: the same insert stream with LSM maintenance
  // (flush + merge) moved onto a background worker pool, against the
  // synchronous baseline where every full memtable stalls the writer.
  // `accept_sec` is the writer-visible time — when the last Insert returned
  // and the feed could disconnect; flushes still draining are finished in
  // `drain_sec`. The accept speedup is the throughput gain a producer sees.
  // Not part of "all" so the paper-figure modes stay single-threaded.
  // Durability-cost matrix: records/sec and fsyncs/record for every WAL
  // sync mode, with single-record commit vs group commit side by side.
  // Group commit only changes behavior under every-record sync (that is the
  // mode with an fsync on the commit path to amortize); the other rows are
  // shown once. `--writers=` and `--batch=` pick the concurrency and the
  // WriteBatch size every cell runs with.
  if (mode == "durability") {
    PrintHeader("WAL durability matrix (" + std::to_string(writers) +
                    " writers, batch=" + std::to_string(batch) + ")",
                {"sync_mode", "commit", "records/s", "fsync/rec", "seconds"});
    struct MatrixRow {
      const char* sync;
      const char* wal_sync;  // empty = WAL off
      int wal;
      bool group;
      const char* commit;
    };
    const MatrixRow rows[] = {
        {"(wal off)", "", 0, false, "-"},
        {"none", "none", 1, false, "single"},
        {"flush-only", "flush-only", 1, false, "single"},
        {"every-record", "every-record", 1, false, "single"},
        {"every-record", "every-record", 1, true, "group"},
    };
    for (const MatrixRow& row : rows) {
      CommitRunResult result = MultiWriterWalIngest(
          records, writers, batch, payload, row.wal, row.wal_sync, row.group);
      PrintCell(row.sync);
      PrintCell(row.commit);
      PrintCell(static_cast<double>(records) / result.seconds);
      PrintCell(row.wal > 0 ? static_cast<double>(result.syncs) /
                                  static_cast<double>(result.logged)
                            : 0.0);
      PrintCell(result.seconds);
      EndRow();
    }
  }

  // Adaptive memory arbiter vs static splits of one fixed budget, over a
  // phased workload: phase 1 is ingest-heavy (write buffers are the scarce
  // resource), phase 2 is query-heavy point reads over a hot key subset (the
  // block cache is). A static split is tuned for one phase and pays for it
  // in the other; the arbiter re-splits live as utility signals shift.
  // `--total_mb=` sets the budget, `--passes=` the number of phase-2 sweeps.
  if (mode == "memory") {
    const uint64_t total_mb = std::max<uint64_t>(flags.GetU64("total_mb", 8),
                                                 2);
    const uint64_t total_bytes = total_mb << 20;
    const size_t passes = flags.GetU64("passes", 6);
    // Hot subset: small enough that a read-leaning split caches it, big
    // enough that a write-leaning split cannot.
    const uint64_t hot_keys = std::max<uint64_t>(records / 8, 1);

    PrintHeader("adaptive memory arbiter vs static splits (" +
                    std::to_string(total_mb) + " MiB total, " +
                    std::to_string(passes) + " query passes over " +
                    std::to_string(hot_keys) + " hot keys)",
                {"config", "ingest_sec", "query_sec", "total_sec",
                 "cache_hit%"});

    // memtable_frac picks the static split; < 0 runs the arbiter instead.
    auto run_config = [&](const char* label, double memtable_frac) {
      StatisticsCatalog catalog;
      LocalCatalogSink sink(&catalog);
      ScopedTempDir dir;
      DatasetOptions options;
      options.directory = dir.path();
      options.name = "tweets";
      options.schema = TweetSchema(domain);
      options.synopsis_type = SynopsisType::kEquiWidthHistogram;
      options.synopsis_budget = budget;
      options.sink = &sink;
      options.merge_policy = std::make_shared<TieredMergePolicy>();
      if (memtable_frac < 0) {
        options.total_memory_mb = total_mb;
        // Seed cache size is irrelevant — the first rebalance overrides it.
        options.block_cache_mb = std::max<uint64_t>(total_mb / 4, 1);
        // The byte grant governs rotation; disable the entry bound.
        options.memtable_max_entries = records + 1;
      } else {
        const auto memtable_bytes =
            static_cast<uint64_t>(static_cast<double>(total_bytes) *
                                  memtable_frac);
        options.block_cache_mb =
            std::max<uint64_t>((total_bytes - memtable_bytes) >> 20, 1);
        // Static byte split expressed through the entry bound (records are
        // payload + ~64 B of keys/overhead each).
        options.memtable_max_entries =
            std::max<uint64_t>(memtable_bytes / (payload + 64), 64);
      }
      auto dataset = Dataset::Open(std::move(options));
      LSMSTATS_CHECK_OK(dataset.status());

      WallTimer ingest_timer;
      for (const Record& record : base_records) {
        LSMSTATS_CHECK_OK((*dataset)->Insert(record));
      }
      LSMSTATS_CHECK_OK((*dataset)->Flush());
      const double ingest_sec = ingest_timer.ElapsedSeconds();
      if (const MemoryArbiter* arbiter = (*dataset)->memory_arbiter()) {
        std::printf("    # grants after ingest:");
        for (const MemoryArbiter::GrantInfo& info : arbiter->Snapshot()) {
          std::printf(" %s=%.2fMiB", info.name.c_str(),
                      static_cast<double>(info.granted) / (1 << 20));
        }
        std::printf("\n");
      }

      WallTimer query_timer;
      for (size_t pass = 0; pass < passes; ++pass) {
        for (uint64_t pk = 0; pk < hot_keys; ++pk) {
          LSMSTATS_CHECK_OK(
              (*dataset)->Get(static_cast<int64_t>(pk)).status());
        }
      }
      const double query_sec = query_timer.ElapsedSeconds();

      PrintCell(label);
      PrintCell(ingest_sec);
      PrintCell(query_sec);
      PrintCell(ingest_sec + query_sec);
      BlockCache::Stats stats = (*dataset)->block_cache()->GetStats();
      PrintCell(100.0 * static_cast<double>(stats.hits) /
                static_cast<double>(std::max<uint64_t>(
                    stats.hits + stats.misses, 1)));
      EndRow();
      if (const MemoryArbiter* arbiter = (*dataset)->memory_arbiter()) {
        std::printf("    # grants after run (%llu rebalances):",
                    static_cast<unsigned long long>(arbiter->rebalances()));
        for (const MemoryArbiter::GrantInfo& info : arbiter->Snapshot()) {
          std::printf(" %s=%.2fMiB/use %.2fMiB", info.name.c_str(),
                      static_cast<double>(info.granted) / (1 << 20),
                      static_cast<double>(info.usage) / (1 << 20));
        }
        std::printf("\n");
      }
    };
    run_config("arbiter", -1.0);
    run_config("static 75/25 (write)", 0.75);
    run_config("static 50/50 (even)", 0.50);
    run_config("static 25/75 (read)", 0.25);
  }

  if (mode == "concurrent") {
    const size_t threads = flags.GetU64("threads", 4);
    PrintHeader("Fig 2c: concurrent ingestion (background flush/merge, " +
                    std::to_string(threads) + " workers)",
                {"Synopsis", "sync_sec", "accept_sec", "drain_sec",
                 "accept_speedup"});
    struct IngestTimes {
      double accept = 0;
      double total = 0;
    };
    auto ingest = [&](SynopsisType type, BackgroundScheduler* scheduler) {
      StatisticsCatalog catalog;
      LocalCatalogSink sink(&catalog);
      ScopedTempDir dir;
      auto dataset = OpenDataset(dir.path(), domain, type, budget,
                                 memtable_entries, &sink, storage, scheduler);
      IngestTimes times;
      WallTimer timer;
      for (const Record& record : base_records) {
        LSMSTATS_CHECK_OK(dataset->Insert(record));
      }
      times.accept = timer.ElapsedSeconds();
      LSMSTATS_CHECK_OK(dataset->Flush());
      LSMSTATS_CHECK_OK(dataset->WaitForBackgroundWork());
      times.total = timer.ElapsedSeconds();
      return times;
    };
    for (SynopsisType type : AllModes()) {
      IngestTimes sync_times = ingest(type, nullptr);
      BackgroundScheduler scheduler(threads);
      IngestTimes conc_times = ingest(type, &scheduler);
      PrintCell(SynopsisTypeToString(type));
      PrintCell(sync_times.total);
      PrintCell(conc_times.accept);
      PrintCell(conc_times.total - conc_times.accept);
      PrintCell(sync_times.total / conc_times.accept);
      EndRow();
    }

    // Group commit vs per-record commit at `writers` concurrent writers.
    // Only meaningful when an fsync sits on the commit path, so this runs
    // with every-record sync (overriding --wal_sync= for the comparison if
    // the WAL was requested with a different mode). The no-WAL row bounds
    // how much of the raw ingest rate durable commit retains.
    if (storage.wal > 0) {
      PrintHeader("group commit vs per-record commit (" +
                      std::to_string(writers) + " writers, batch=" +
                      std::to_string(batch) + ", every-record sync)",
                  {"commit", "records/s", "fsync/rec", "speedup"});
      CommitRunResult no_wal =
          MultiWriterWalIngest(records, writers, batch, payload, 0, "", false);
      CommitRunResult single = MultiWriterWalIngest(
          records, writers, batch, payload, 1, "every-record", false);
      CommitRunResult group = MultiWriterWalIngest(
          records, writers, batch, payload, 1, "every-record", true);
      auto emit = [&](const char* label, const CommitRunResult& result,
                      bool wal_on) {
        PrintCell(label);
        PrintCell(static_cast<double>(records) / result.seconds);
        PrintCell(wal_on ? static_cast<double>(result.syncs) /
                               static_cast<double>(result.logged)
                         : 0.0);
        PrintCell(single.seconds / result.seconds);
        EndRow();
      };
      emit("no-wal", no_wal, false);
      emit("per-record", single, true);
      emit("group", group, true);
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
