// Figure 9: estimation accuracy on the WorldCup-like web-log dataset.
//
// Feed-style ingestion under the Constant(5) merge policy; per-field range
// queries whose length is 1% of the field's observed value range; synopsis
// sizes 16 / 64 / 256.
//
// Expected shapes (paper §4.4):
//  * EquiWidth does not improve with more buckets on Timestamp / ClientID /
//    ObjectID — real values sit in a narrow sub-range of the int32 domain,
//    so (nearly) all of them land in one fixed-width bucket.
//  * EquiHeight and Wavelet adapt to the populated region; wavelets are
//    roughly 5-10x more accurate.
//  * Size (heavy tail) favours wavelets given enough coefficients.
//  * Status / Server are spiky categorical fields where proximity-based
//    estimation is hardest for everyone.

#include <algorithm>
#include <cinttypes>

#include "bench_common.h"
#include "db/dataset.h"
#include "workload/exact_counter.h"
#include "workload/worldcup.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 100000);
  const size_t queries = flags.GetU64("queries", 500);
  const std::vector<size_t> budgets = {16, 64, 256};

  std::printf("Figure 9: WorldCup-like dataset accuracy (records=%" PRIu64
              ", range = 1%% of each field's span, Constant(5) policy)\n",
              records);

  // Generate once; build per-field oracles and query ranges.
  Schema schema = WorldCupSchema();
  std::vector<Record> base_records;
  std::map<std::string, std::vector<int64_t>> columns;
  {
    WorldCupGenerator generator(records, 11);
    while (generator.HasNext()) {
      Record record = generator.Next();
      for (size_t i = 0; i < schema.field_count(); ++i) {
        columns[schema.field(i).name].push_back(record.fields[i]);
      }
      base_records.push_back(std::move(record));
    }
  }
  std::map<std::string, ExactCounter> oracles;
  std::map<std::string, std::pair<int64_t, int64_t>> spans;
  for (const std::string& field : WorldCupIndexedFields()) {
    auto [lo, hi] = std::minmax_element(columns[field].begin(),
                                        columns[field].end());
    spans[field] = {*lo, *hi};
    oracles.emplace(field, ExactCounter(columns[field]));
  }

  for (SynopsisType type : EvaluatedSynopsisTypes()) {
    PrintHeader(std::string("Fig 9, synopsis = ") + SynopsisTypeToString(type) +
                    "  [normalized L1 error]",
                {"Field", "16", "64", "256"});
    // error[field][budget]
    std::map<std::string, std::vector<double>> errors;
    for (size_t budget : budgets) {
      StatisticsCatalog catalog;
      LocalCatalogSink sink(&catalog);
      ScopedTempDir dir;
      DatasetOptions options;
      options.directory = dir.path();
      options.name = "worldcup";
      options.schema = schema;
      options.synopsis_type = type;
      options.synopsis_budget = budget;
      options.memtable_max_entries = records / 10 + 1;
      options.merge_policy = std::make_shared<ConstantMergePolicy>(5);
      options.sink = &sink;
      auto dataset = Dataset::Open(std::move(options));
      LSMSTATS_CHECK_OK(dataset.status());
      for (const Record& record : base_records) {
        LSMSTATS_CHECK_OK((*dataset)->Insert(record));
      }
      LSMSTATS_CHECK_OK((*dataset)->Flush());

      CardinalityEstimator estimator(&catalog, {});
      Random rng(99);
      for (const std::string& field : WorldCupIndexedFields()) {
        auto [field_min, field_max] = spans[field];
        int64_t length = std::max<int64_t>(
            1, (field_max - field_min) / 100);  // 1% of the field's span
        const ExactCounter& oracle = oracles.at(field);
        double error_sum = 0;
        for (size_t q = 0; q < queries; ++q) {
          int64_t lo = field_min + rng.UniformInRange(
                                       0, std::max<int64_t>(
                                              0, field_max - field_min -
                                                     length));
          int64_t hi = lo + length - 1;
          double estimate =
              estimator.EstimateRange("worldcup", field, lo, hi);
          double exact = static_cast<double>(oracle.ExactRange(lo, hi));
          error_sum += std::abs(estimate - exact) /
                       static_cast<double>(records);
        }
        errors[field].push_back(error_sum / static_cast<double>(queries));
      }
    }
    for (const std::string& field : WorldCupIndexedFields()) {
      PrintCell(field);
      for (double error : errors[field]) PrintCell(error);
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
