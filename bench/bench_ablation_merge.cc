// Ablation A1 (design choice of §3.5): keep per-component synopses separate
// vs. serve queries from one merged synopsis.
//
// The paper keeps all synopses as separate catalog entries because an
// estimate E_A + E_B from separate synopses is generally at least as
// accurate as E_{A⊕B} from the combined synopsis, trading catalog space for
// accuracy. This bench quantifies both sides for the two mergeable types:
// error from separate vs merged estimates, per-query time for each path,
// and the catalog bytes each strategy retains.

#include <cinttypes>

#include "bench_common.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const size_t components = flags.GetU64("components", 16);

  std::printf("Ablation A1: separate vs merged synopses (records=%" PRIu64
              ", %zu components, %zu-element synopses)\n",
              records, components, budget);

  PrintHeader("A1  [normalized L1 error | ms/query | catalog bytes]",
              {"Spread", "Synopsis", "err_separate", "err_merged",
               "ms_separate", "ms_merged", "bytes_sep", "bytes_merged"});
  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = FrequencyDistribution::kZipfRandom;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);

    std::vector<StatsRig::SynopsisSlot> slots = {
        {"EquiWidth", SynopsisType::kEquiWidthHistogram, budget},
        {"Wavelet", SynopsisType::kWavelet, budget},
    };
    ScopedTempDir dir;
    StatsRig rig(dir.path(), spec.domain, slots,
                 std::make_shared<ConstantMergePolicy>(components),
                 records / (2 * components) + 1);
    rig.IngestAll(dist.ExpandShuffled(7));
    rig.Flush();

    auto query_set = QueryGenerator::Make(QueryType::kFixedLength,
                                          spec.domain, 128, 99, queries);

    CardinalityEstimator::Options separate_options;
    separate_options.enable_merged_cache = false;
    CardinalityEstimator separate(rig.catalog(), separate_options);
    CardinalityEstimator merged(rig.catalog(), {});

    for (const auto& slot : slots) {
      StatisticsKey key{"rig", slot.label, 0};
      auto run = [&](CardinalityEstimator& estimator, double* error,
                     double* millis) {
        estimator.EstimateRangePartition(key, 0, 1);  // warm the cache
        *error = NormalizedL1Error(
            query_set,
            [&](const RangeQuery& q) {
              return estimator.EstimateRangePartition(key, q.lo, q.hi);
            },
            [&](const RangeQuery& q) { return dist.ExactRange(q.lo, q.hi); },
            dist.total_records());
        WallTimer timer;
        double checksum = 0;
        for (const RangeQuery& q : query_set) {
          checksum += estimator.EstimateRangePartition(key, q.lo, q.hi);
        }
        (void)checksum;
        *millis =
            timer.ElapsedMillis() / static_cast<double>(query_set.size());
      };
      double err_sep, ms_sep, err_merged, ms_merged;
      run(separate, &err_sep, &ms_sep);
      run(merged, &err_merged, &ms_merged);

      // Space: all separate entries vs one merged synopsis pair.
      uint64_t bytes_separate = 0;
      uint64_t bytes_merged = 0;
      auto entries = rig.catalog()->GetSynopses(key);
      for (const auto& entry : entries) {
        Encoder enc;
        entry.synopsis->EncodeTo(&enc);
        bytes_separate += enc.size();
      }
      if (!entries.empty()) {
        std::unique_ptr<Synopsis> folded = entries[0].synopsis->Clone();
        for (size_t i = 1; i < entries.size(); ++i) {
          auto combined =
              MergeSynopses(*folded, *entries[i].synopsis, budget);
          LSMSTATS_CHECK_OK(combined.status());
          folded = std::move(combined).value();
        }
        Encoder enc;
        folded->EncodeTo(&enc);
        bytes_merged = enc.size();
      }

      PrintCell(SpreadDistributionToString(spread));
      PrintCell(slot.label);
      PrintCell(err_sep);
      PrintCell(err_merged);
      PrintCell(ms_sep);
      PrintCell(ms_merged);
      PrintCell(static_cast<double>(bytes_separate));
      PrintCell(static_cast<double>(bytes_merged));
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
