// Figure 4: estimation accuracy vs. query type.
//
// For a dataset with Zipf frequencies, measure the normalized L1 error of
// Point, FixedLength(128), HalfOpen, and Random queries across all six
// spread distributions (256-element synopses, the paper's fixed choice after
// §4.3.1).
//
// Expected shape (paper §4.3.2, log-scale figure): Point < FixedLength <
// HalfOpen ≈ Random, because wider ranges return more tuples and the L1
// metric grows with the touched fraction of the dataset.

#include <cinttypes>

#include "bench_common.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const auto frequency = ParseFrequencyDistribution(
      flags.GetString("frequencies", "Zipf"));
  LSMSTATS_CHECK_OK(frequency.status());

  std::printf("Figure 4: accuracy vs query type (records=%" PRIu64
              ", %s frequencies, %zu-element synopses)\n",
              records, FrequencyDistributionToString(*frequency), budget);

  PrintHeader("Fig 4  [normalized L1 error]",
              {"Spread", "Synopsis", "Point", "FixedLength", "HalfOpen",
               "Random"});
  for (SpreadDistribution spread : AllSpreadDistributions()) {
    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = *frequency;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);

    std::vector<StatsRig::SynopsisSlot> slots;
    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      slots.push_back({SynopsisTypeToString(type), type, budget});
    }
    ScopedTempDir dir;
    StatsRig rig(dir.path(), spec.domain, slots,
                 std::make_shared<ConstantMergePolicy>(5),
                 records / 12 + 1);
    rig.IngestAll(dist.ExpandShuffled(7));
    rig.Flush();

    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      PrintCell(SpreadDistributionToString(spread));
      PrintCell(SynopsisTypeToString(type));
      for (QueryType query_type : AllQueryTypes()) {
        auto query_set = QueryGenerator::Make(query_type, spec.domain, 128,
                                              99, queries);
        PrintCell(
            MeasureError(rig, SynopsisTypeToString(type), query_set, dist));
      }
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
