// Figure 7: estimation accuracy under changeable (insert/update/delete)
// workloads that generate anti-matter.
//
// A changeable feed ingests a ZipfRandom-frequency dataset into a full
// Dataset (primary + secondary index) while the ratio of updates (U) and
// deletes (D) in the op mix is raised 0 -> 0.3. Ingestion is broken into
// stages with forced flushes (§4.3.4) so updates/deletes referencing earlier
// stages actually generate anti-matter records rather than being silently
// annihilated in the memtable. Estimates subtract the anti-matter synopsis
// (§3.3); the ground truth is the final live multiset.
//
// Expected shape: accuracy does NOT degrade as the anti-matter fraction
// grows — the separate anti-synopsis design absorbs changeable workloads at
// a constant 2x synopsis storage cost.

#include <cinttypes>

#include "bench_common.h"
#include "db/dataset.h"
#include "workload/exact_counter.h"
#include "workload/feed.h"
#include "workload/tweets.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  const uint64_t records = flags.GetU64("records", 50000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const size_t budget = flags.GetU64("budget", 256);
  const size_t stages = flags.GetU64("stages", 10);
  const std::vector<double> ratios = {0.0, 0.1, 0.2, 0.3};

  std::printf("Figure 7: accuracy vs update/delete ratio (records=%" PRIu64
              ", ZipfRandom frequencies, %zu-element synopses, %zu staged "
              "flushes)\n",
              records, budget, stages);

  for (SpreadDistribution spread : AllSpreadDistributions()) {
    PrintHeader(std::string("Fig 7, spread = ") +
                    SpreadDistributionToString(spread) +
                    "  [normalized L1 error]",
                {"Synopsis", "U=D=0", "U=D=0.1", "U=D=0.2", "U=D=0.3"});

    DistributionSpec spec;
    spec.spread = spread;
    spec.frequency = FrequencyDistribution::kZipfRandom;
    spec.num_values = values;
    spec.total_records = records;
    spec.domain = ValueDomain(0, log_domain);
    spec.seed = 42;
    auto dist = SyntheticDistribution::Generate(spec);
    TweetGenerator generator(dist, /*payload_bytes=*/16, 7);
    std::vector<Record> base_records;
    while (generator.HasNext()) base_records.push_back(generator.Next());

    // error[type][ratio]
    std::map<SynopsisType, std::vector<double>> errors;
    for (double ratio : ratios) {
      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        StatisticsCatalog catalog;
        LocalCatalogSink sink(&catalog);
        ScopedTempDir dir;
        DatasetOptions options;
        options.directory = dir.path();
        options.name = "tweets";
        options.schema = TweetSchema(spec.domain);
        options.synopsis_type = type;
        options.synopsis_budget = budget;
        options.memtable_max_entries = records / stages / 2 + 1;
        options.merge_policy = std::make_shared<ConstantMergePolicy>(5);
        options.sink = &sink;
        auto dataset = Dataset::Open(std::move(options));
        LSMSTATS_CHECK_OK(dataset.status());

        ChangeableFeedOptions feed_options;
        feed_options.update_ratio = ratio;
        feed_options.delete_ratio = ratio;
        ChangeableFeed feed(base_records, &dist, /*field_index=*/0,
                            feed_options);
        FeedOp op;
        uint64_t ops = 0;
        uint64_t stage_size = records / stages + 1;
        while (feed.Next(&op)) {
          switch (op.kind) {
            case FeedOp::Kind::kInsert:
              LSMSTATS_CHECK_OK((*dataset)->Insert(op.record));
              break;
            case FeedOp::Kind::kUpdate:
              LSMSTATS_CHECK_OK((*dataset)->Update(op.record));
              break;
            case FeedOp::Kind::kDelete:
              LSMSTATS_CHECK_OK((*dataset)->Delete(op.record.pk));
              break;
          }
          if (++ops % stage_size == 0) {
            LSMSTATS_CHECK_OK((*dataset)->Flush());  // stage boundary
          }
        }
        LSMSTATS_CHECK_OK((*dataset)->Flush());

        ExactCounter oracle(feed.FinalLiveValues());
        CardinalityEstimator estimator(&catalog, {});
        auto query_set = QueryGenerator::Make(QueryType::kFixedLength,
                                              spec.domain, 128, 99, queries);
        errors[type].push_back(NormalizedL1Error(
            query_set,
            [&](const RangeQuery& q) {
              return estimator.EstimateRange("tweets", kTweetMetricField,
                                             q.lo, q.hi);
            },
            [&](const RangeQuery& q) { return oracle.ExactRange(q.lo, q.hi); },
            records));
      }
    }
    for (SynopsisType type : EvaluatedSynopsisTypes()) {
      PrintCell(SynopsisTypeToString(type));
      for (double error : errors[type]) PrintCell(error);
      EndRow();
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
