// Figure 3: estimation accuracy vs. synopsis size.
//
// For datasets with (a) Uniform, (b) Zipf, (c) ZipfRandom frequency
// distributions — each across the six spread distributions — measure the
// normalized L1 absolute error of FixedLength(128) queries while the
// synopsis element budget grows 16 -> 1024, for all three synopsis types.
//
// Expected shape (paper §4.3.1): near-zero error for smooth-CDF cases
// (Uniform frequencies with non-random spreads); error falls with synopsis
// size elsewhere; histograms plateau on skewed (Zipf) data while wavelets
// keep improving and win overall.

#include <cinttypes>

#include "bench_common.h"

namespace lsmstats::bench {
namespace {

void Run(const Flags& flags) {
  // Defaults are scaled down from the paper's 50M records / 32-bit domain to
  // a single-core box while preserving the ratio of query length to value
  // spread (queries cover ~4 values), which is what the accuracy shapes
  // depend on.
  const uint64_t records = flags.GetU64("records", 200000);
  const size_t values = flags.GetU64("values", 2000);
  const size_t queries = flags.GetU64("queries", 1000);
  const int log_domain = static_cast<int>(flags.GetU64("log_domain", 16));
  const uint64_t query_length = flags.GetU64("query_length", 128);
  const std::vector<size_t> sizes = {16, 64, 256, 1024};

  std::printf("Figure 3: accuracy vs synopsis size "
              "(records=%" PRIu64 ", values=%zu, queries=%zu, "
              "FixedLength(%" PRIu64 "))\n",
              records, values, queries, query_length);

  for (FrequencyDistribution frequency : AllFrequencyDistributions()) {
    PrintHeader(std::string("Fig 3, frequencies = ") +
                    FrequencyDistributionToString(frequency) +
                    "  [normalized L1 error]",
                {"Spread", "Synopsis", "16", "64", "256", "1024"});
    for (SpreadDistribution spread : AllSpreadDistributions()) {
      DistributionSpec spec;
      spec.spread = spread;
      spec.frequency = frequency;
      spec.num_values = values;
      spec.total_records = records;
      spec.domain = ValueDomain(0, log_domain);
      spec.seed = 42;
      auto dist = SyntheticDistribution::Generate(spec);

      // One ingestion pass collects all type x size slots.
      std::vector<StatsRig::SynopsisSlot> slots;
      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        for (size_t size : sizes) {
          slots.push_back({std::string(SynopsisTypeToString(type)) + "/" +
                               std::to_string(size),
                           type, size});
        }
      }
      ScopedTempDir dir;
      StatsRig rig(dir.path(), spec.domain, slots,
                   std::make_shared<ConstantMergePolicy>(5),
                   /*memtable_entries=*/records / 12 + 1);
      rig.IngestAll(dist.ExpandShuffled(7));
      rig.Flush();

      auto query_set = QueryGenerator::Make(
          QueryType::kFixedLength, spec.domain, query_length, 99, queries);
      for (SynopsisType type : EvaluatedSynopsisTypes()) {
        PrintCell(SpreadDistributionToString(spread));
        PrintCell(SynopsisTypeToString(type));
        for (size_t size : sizes) {
          std::string label = std::string(SynopsisTypeToString(type)) + "/" +
                              std::to_string(size);
          PrintCell(MeasureError(rig, label, query_set, dist));
        }
        EndRow();
      }
    }
  }
}

}  // namespace
}  // namespace lsmstats::bench

int main(int argc, char** argv) {
  lsmstats::bench::Run(lsmstats::bench::Flags(argc, argv));
  return 0;
}
