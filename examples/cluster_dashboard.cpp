// Cluster dashboard: statistics collection in a shared-nothing deployment
// (paper §3.4), shown end to end.
//
// Four node controllers each own one hash partition of a tweet dataset.
// Every LSM event on every node serializes its synopses and ships the bytes
// to the cluster controller, which maintains the global catalog and serves
// cluster-wide cardinality estimates. The dashboard prints the transport
// accounting, per-partition catalog state, and global estimate accuracy.
//
//   $ ./cluster_dashboard

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "cluster/cluster.h"
#include "workload/distribution.h"
#include "workload/tweets.h"

using namespace lsmstats;

int main() {
  std::string dir = "/tmp/lsmstats_cluster_demo";
  std::filesystem::remove_all(dir);
  // Demo setup: the directory may already exist, which is fine.
  (void)CreateDirIfMissing(dir);

  DistributionSpec spec;
  spec.spread = SpreadDistribution::kCuspMax;
  spec.frequency = FrequencyDistribution::kZipf;
  spec.num_values = 2000;
  spec.total_records = 40000;
  spec.domain = ValueDomain(0, 16);
  auto dist = SyntheticDistribution::Generate(spec);

  DatasetOptions options;
  options.name = "tweets";
  options.schema = TweetSchema(spec.domain);
  options.synopsis_type = SynopsisType::kEquiWidthHistogram;
  options.synopsis_budget = 256;
  options.memtable_max_entries = 2500;
  options.merge_policy = std::make_shared<ConstantMergePolicy>(4);

  auto cluster_or = Cluster::Start(4, dir, std::move(options));
  if (!cluster_or.ok()) {
    std::fprintf(stderr, "%s\n", cluster_or.status().ToString().c_str());
    return 1;
  }
  Cluster& cluster = *cluster_or.value();

  std::printf("ingesting %" PRIu64 " tweets across %zu partitions...\n",
              dist.total_records(), cluster.num_partitions());
  TweetGenerator generator(dist, 100, 7);
  while (generator.HasNext()) {
    Status s = cluster.Insert(generator.Next());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!cluster.FlushAll().ok()) return 1;

  std::printf("\n-- transport --------------------------------------------\n");
  uint64_t total_sent = 0;
  for (size_t i = 0; i < cluster.num_partitions(); ++i) {
    NodeController* node = cluster.node(i);
    std::printf("  node %zu: %" PRIu64 " statistics messages, %" PRIu64
                " bytes shipped, %zu live components\n",
                i, node->messages_sent(), node->bytes_sent(),
                node->dataset()->primary()->ComponentCount());
    total_sent += node->bytes_sent();
  }
  std::printf("  cluster controller received %" PRIu64 " messages / %" PRIu64
              " bytes (catalog holds %" PRIu64 " bytes)\n",
              cluster.controller().messages_received(),
              cluster.controller().bytes_received(),
              cluster.controller().catalog().TotalStorageBytes());

  std::printf("\n-- global estimates -------------------------------------\n");
  std::printf("  %-24s%-14s%-12s%-10s\n", "metric range", "estimate", "exact",
              "rel.err");
  for (auto [lo, hi] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 65535}, {0, 2000}, {20000, 40000}, {60000, 65535}}) {
    CardinalityEstimator::QueryStats stats;
    double estimate = cluster.EstimateRange(kTweetMetricField, lo, hi,
                                            &stats);
    uint64_t exact = cluster.CountRange(kTweetMetricField, lo, hi).value();
    double rel = exact == 0 ? 0.0
                            : std::abs(estimate - static_cast<double>(exact)) /
                                  static_cast<double>(exact);
    std::printf("  [%6" PRId64 ", %6" PRId64 "]      %-14.1f%-12" PRIu64
                "%-10.4f\n",
                lo, hi, estimate, exact, rel);
  }

  // Second round: merged-synopsis caching per partition.
  CardinalityEstimator::QueryStats cold, warm;
  cluster.controller().estimator().InvalidateCache();
  cluster.EstimateRange(kTweetMetricField, 0, 65535, &cold);
  cluster.EstimateRange(kTweetMetricField, 0, 65535, &warm);
  std::printf("\n-- merged-synopsis cache (equi-width merges, §3.5) ------\n");
  std::printf("  cold query probed %zu synopses; warm query probed %zu "
              "(served from cache: %s)\n",
              cold.synopses_probed, warm.synopses_probed,
              warm.served_from_cache ? "yes" : "no");

  std::filesystem::remove_all(dir);
  return 0;
}
