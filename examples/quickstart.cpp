// Quickstart: open a dataset with statistics enabled, ingest records through
// the LSM write path, and ask the estimator cardinality questions.
//
//   $ ./quickstart
//
// Walks through the whole pipeline of the paper: records land in the
// memtable, flushes/merges build synopses as a by-product, synopses land in
// the catalog, and the estimator answers range-cardinality queries from them
// without touching the data.

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "db/dataset.h"
#include "stats/cardinality_estimator.h"

using namespace lsmstats;

int main() {
  std::string dir = "/tmp/lsmstats_quickstart";
  std::filesystem::remove_all(dir);

  // 1. A schema with one indexed attribute. Statistics are collected on
  //    indexed attributes only (the index provides the sorted order the
  //    streaming builders need).
  FieldDef age;
  age.name = "age";
  age.type = FieldType::kInt8;  // domain [-128, 127], padded to 2^8
  age.indexed = true;

  // 2. The statistics catalog and the sink that fills it. In a cluster the
  //    sink would serialize synopses and ship them to the cluster
  //    controller; locally it registers them directly.
  StatisticsCatalog catalog;
  LocalCatalogSink sink(&catalog);

  DatasetOptions options;
  options.directory = dir;
  options.name = "people";
  options.schema = Schema({age});
  options.synopsis_type = SynopsisType::kWavelet;  // or EquiWidth/EquiHeight
  options.synopsis_budget = 64;                    // elements per synopsis
  options.memtable_max_entries = 1000;             // small, to force flushes
  options.merge_policy = std::make_shared<ConstantMergePolicy>(3);
  options.sink = &sink;

  auto dataset_or = Dataset::Open(std::move(options));
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 dataset_or.status().ToString().c_str());
    return 1;
  }
  auto& dataset = *dataset_or.value();

  // 3. Ingest. Every memtable flush and every merge builds synopses on the
  //    fly; no scan, no ANALYZE job.
  std::printf("ingesting 10000 people...\n");
  for (int64_t pk = 0; pk < 10000; ++pk) {
    Record person;
    person.pk = pk;
    // A bimodal age distribution: a young cluster and an older cluster.
    person.fields = {pk % 3 == 0 ? 20 + pk % 12 : 45 + pk % 30};
    Status s = dataset.Insert(person);
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Some churn: the paper's anti-matter machinery handles it transparently.
  for (int64_t pk = 0; pk < 1000; ++pk) {
    // Demo: churn best-effort; estimates are checked below, not each op.
    (void)dataset.Delete(pk * 7 % 10000);
  }
  // Demo: flush errors would surface in the queries below.
  (void)dataset.Flush();

  std::printf("LSM components (primary index): %zu, synopses in catalog: "
              "%zu\n",
              dataset.primary()->ComponentCount(),
              catalog.EntryCount(dataset.StatsKey("age")));

  // 4. Estimate cardinalities — this is what a cost-based optimizer would
  //    call while planning `SELECT * FROM people WHERE age BETWEEN x AND y`.
  CardinalityEstimator estimator(&catalog, {});
  struct Query {
    int64_t lo, hi;
  } queries[] = {{18, 30}, {30, 45}, {45, 80}, {0, 127}};
  std::printf("\n%-16s%-14s%-14s%-10s\n", "age range", "estimate", "exact",
              "rel.err");
  for (const Query& q : queries) {
    double estimate = estimator.EstimateRange("people", "age", q.lo, q.hi);
    uint64_t exact = dataset.CountRange("age", q.lo, q.hi).value();
    double rel = exact == 0 ? 0.0
                            : std::abs(estimate - static_cast<double>(exact)) /
                                  static_cast<double>(exact);
    std::printf("[%3" PRId64 ", %3" PRId64 "]    %-14.1f%-14" PRIu64
                "%-10.3f\n",
                q.lo, q.hi, estimate, exact, rel);
  }

  std::filesystem::remove_all(dir);
  return 0;
}
