// Web-log explorer: approximate analytics over a WorldCup'98-like server
// log, answered entirely from LSM-collected statistics (no data scans).
//
// Demonstrates the paper's §4.4 setting as an application: per-field
// synopses built during ingestion answer exploratory questions — traffic in
// a time window, error-rate, response-size percentile brackets — and the
// report compares every approximate answer against the exact scan.
//
//   $ ./weblog_explorer

#include <array>
#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "db/dataset.h"
#include "stats/cardinality_estimator.h"
#include "workload/worldcup.h"

using namespace lsmstats;

namespace {

void Report(const char* question, double estimate, uint64_t exact) {
  double rel = exact == 0
                   ? 0.0
                   : std::abs(estimate - static_cast<double>(exact)) /
                         static_cast<double>(exact);
  std::printf("  %-52s ~%-12.0f exact %-12" PRIu64 " (rel.err %.3f)\n",
              question, estimate, exact, rel);
}

}  // namespace

int main() {
  std::string dir = "/tmp/lsmstats_weblog";
  std::filesystem::remove_all(dir);

  StatisticsCatalog catalog;
  LocalCatalogSink sink(&catalog);
  DatasetOptions options;
  options.directory = dir;
  options.name = "weblog";
  // Narrow the composite fields' synopsis domains to their real value
  // ranges: over the full int32 domain a 16x16 grid collapses into one cell
  // — exactly the equi-width failure Figure 9 demonstrates in 1-D.
  std::vector<FieldDef> fields = WorldCupSchema().fields();
  for (FieldDef& field : fields) {
    if (field.name == "Status") field.domain = ValueDomain::Padded(0, 1023);
    if (field.name == "Server") field.domain = ValueDomain::Padded(0, 63);
  }
  options.schema = Schema(std::move(fields));
  options.synopsis_type = SynopsisType::kEquiHeightHistogram;
  options.synopsis_budget = 256;
  options.memtable_max_entries = 10000;
  options.merge_policy = std::make_shared<ConstantMergePolicy>(5);
  // A composite index answers conjunctive predicates (Status x Server)
  // without the attribute-independence assumption (§5 future work).
  options.composite_indexes = {{"Status", "Server"}};
  options.sink = &sink;
  auto dataset_or = Dataset::Open(std::move(options));
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  auto& dataset = *dataset_or.value();

  const uint64_t kRecords = 60000;
  std::printf("ingesting %" PRIu64 " web-log records...\n", kRecords);
  WorldCupGenerator generator(kRecords, 2026);
  while (generator.HasNext()) {
    Status s = dataset.Insert(generator.Next());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Demo: flush errors would surface in the queries below.
  (void)dataset.Flush();
  std::printf("  components: %zu per index, catalog holds %" PRIu64
              " bytes of statistics\n\n",
              dataset.primary()->ComponentCount(),
              catalog.TotalStorageBytes());

  CardinalityEstimator estimator(&catalog, {});
  auto ask = [&](const char* question, const std::string& field, int64_t lo,
                 int64_t hi) {
    double estimate = estimator.EstimateRange("weblog", field, lo, hi);
    uint64_t exact = dataset.CountRange(field, lo, hi).value();
    Report(question, estimate, exact);
  };

  std::printf("exploratory questions (answered from synopses, verified by "
              "scan):\n");
  // Traffic in the opening week (1998-06-10 .. 1998-06-17).
  ask("requests in the opening week?", "Timestamp", 897436800, 898041600);
  // Error rate.
  ask("requests with 4xx/5xx status?", "Status", 400, 599);
  ask("requests with 304 (cache hits)?", "Status", 304, 304);
  // Response-size brackets.
  ask("tiny responses (< 1 KB)?", "Size", 0, 1023);
  ask("large responses (> 100 KB)?", "Size", 100 * 1024, INT32_MAX);
  // Load on the first 8 servers.
  ask("requests served by servers 0-7?", "Server", 0, 7);
  // One busy client.
  ask("requests from clients 100000-100999?", "ClientID", 100000, 100999);

  std::printf("\nconjunctive predicates from the composite <Status, Server> "
              "index's 2-D grid:\n");
  for (auto [status_lo, status_hi, server_lo, server_hi] :
       std::vector<std::array<int64_t, 4>>{
           {400, 599, 0, 7},   // errors on the first server group
           {200, 299, 8, 15},  // 2xx on the second group
           {300, 399, 0, 31}}) {
    double estimate = estimator.EstimateRange2D(
        "weblog", "Status+Server", status_lo, status_hi, server_lo,
        server_hi);
    uint64_t exact = dataset
                         .CountRange2D("Status", "Server", status_lo,
                                       status_hi, server_lo, server_hi)
                         .value();
    std::printf("  Status in [%" PRId64 ",%" PRId64 "] AND Server in [%"
                PRId64 ",%" PRId64 "]: ~%-10.0f exact %-10" PRIu64 "\n",
                status_lo, status_hi, server_lo, server_hi, estimate, exact);
  }

  std::printf("\nquery-time anatomy of one estimate:\n");
  CardinalityEstimator::QueryStats stats;
  estimator.EstimateRange("weblog", "Size", 0, 1023, &stats);
  std::printf("  synopses probed: %zu (served from merged cache: %s — "
              "equi-height histograms are not mergeable, §3.5)\n",
              stats.synopses_probed,
              stats.served_from_cache ? "yes" : "no");

  std::filesystem::remove_all(dir);
  return 0;
}
