// Statistics on a string attribute via order-preserving dictionary encoding
// (paper §3.1: "variable-length types, e.g. strings, can leverage
// dictionary-encoding to reduce them to the former problem").
//
// A product catalog indexes its `category` string. The dictionary maps the
// sorted distinct categories onto dense integer codes, so string range
// predicates (`category BETWEEN 'd%' AND 'f%'`) become integer ranges over
// the codes — and the whole LSM statistics pipeline applies unchanged.
//
//   $ ./string_stats

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "common/dictionary.h"
#include "common/random.h"
#include "db/dataset.h"
#include "stats/cardinality_estimator.h"

using namespace lsmstats;

int main() {
  std::string dir = "/tmp/lsmstats_strings";
  std::filesystem::remove_all(dir);

  // The category vocabulary, dictionary-encoded in sorted order.
  std::vector<std::string> vocabulary = {
      "appliances", "audio",   "books",   "cameras", "desktops", "displays",
      "drones",     "ebooks",  "fitness", "games",   "garden",   "keyboards",
      "laptops",    "network", "phones",  "printers", "tablets", "wearables"};
  Dictionary dictionary = Dictionary::BuildSorted(vocabulary);
  std::printf("dictionary: %zu categories -> codes [0, %zu), "
              "order-preserving\n",
              dictionary.size(), dictionary.size());

  FieldDef category;
  category.name = "category";
  category.type = FieldType::kInt32;
  category.indexed = true;
  // The synopsis domain is the code space, padded to a power of two (§3.1).
  category.domain = ValueDomain::Padded(
      0, static_cast<int64_t>(dictionary.size()) - 1);

  StatisticsCatalog catalog;
  LocalCatalogSink sink(&catalog);
  DatasetOptions options;
  options.directory = dir;
  options.name = "products";
  options.schema = Schema({category});
  options.synopsis_type = SynopsisType::kEquiHeightHistogram;
  options.synopsis_budget = 32;
  options.memtable_max_entries = 4000;
  options.merge_policy = std::make_shared<PrefixMergePolicy>();
  options.sink = &sink;
  auto dataset_or = Dataset::Open(std::move(options));
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  auto& dataset = *dataset_or.value();

  // Skewed catalog: phones/laptops dominate.
  ZipfSampler popularity(vocabulary.size(), 1.0, 7);
  std::vector<std::string> by_popularity = {
      "phones",   "laptops",  "games",    "books",    "audio",   "tablets",
      "cameras",  "displays", "printers", "network",  "desktops", "wearables",
      "fitness",  "ebooks",   "drones",   "keyboards", "garden",
      "appliances"};
  std::printf("ingesting 30000 products...\n");
  for (int64_t pk = 0; pk < 30000; ++pk) {
    const std::string& name = by_popularity[popularity.Next()];
    Record product;
    product.pk = pk;
    product.fields = {dictionary.Lookup(name).value()};
    product.payload = name;
    Status s = dataset.Insert(product);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Demo: flush errors would surface in the queries below.
  (void)dataset.Flush();

  CardinalityEstimator estimator(&catalog, {});
  auto estimate_between = [&](const std::string& lo_str,
                              const std::string& hi_str) {
    // String range -> code range via the order-preserving dictionary: the
    // smallest code >= lo_str and the largest code <= hi_str.
    int64_t lo_code = 0, hi_code = -1;
    for (size_t code = 0; code < dictionary.size(); ++code) {
      const std::string& word = dictionary.Decode(static_cast<int64_t>(code));
      if (word >= lo_str && lo_code == 0 && (code == 0 || dictionary.Decode(
              static_cast<int64_t>(code - 1)) < lo_str)) {
        lo_code = static_cast<int64_t>(code);
      }
      if (word <= hi_str) hi_code = static_cast<int64_t>(code);
    }
    double estimate =
        estimator.EstimateRange("products", "category", lo_code, hi_code);
    uint64_t exact =
        dataset.CountRange("category", lo_code, hi_code).value();
    std::printf("  category BETWEEN '%s' AND '%s'  ~%-9.0f exact %-9" PRIu64
                " (codes [%" PRId64 ", %" PRId64 "])\n",
                lo_str.c_str(), hi_str.c_str(), estimate, exact, lo_code,
                hi_code);
  };

  std::printf("\nstring range predicates answered from integer synopses:\n");
  estimate_between("a", "bz");        // appliances..books
  estimate_between("c", "dz");        // cameras..drones
  estimate_between("laptops", "phones");
  estimate_between("t", "zz");        // tablets..wearables

  std::printf("\npoint predicate: category = 'phones'\n");
  int64_t phones = dictionary.Lookup("phones").value();
  std::printf("  ~%.0f exact %" PRIu64 "\n",
              estimator.EstimatePoint("products", "category", phones),
              dataset.CountRange("category", phones, phones).value());

  std::filesystem::remove_all(dir);
  return 0;
}
