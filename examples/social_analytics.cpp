// Social-media analytics: a continuously ingesting tweet store whose query
// optimizer uses LSM-collected statistics for the two §3.6 decisions:
//
//   1. skipping low-selectivity secondary-index probes (a probe + primary
//      lookup per match only pays off below a selectivity threshold), and
//   2. choosing between an indexed nested-loop join and a scan join.
//
// The example streams a changeable tweet feed (inserts + updates + deletes),
// then plans a few analytical queries with and without statistics to show
// the decisions a heuristic optimizer would get wrong.
//
//   $ ./social_analytics

#include <cinttypes>
#include <cstdio>
#include <filesystem>

#include "db/dataset.h"
#include "stats/cardinality_estimator.h"
#include "stats/optimizer_hints.h"
#include "workload/distribution.h"
#include "workload/feed.h"
#include "workload/tweets.h"

using namespace lsmstats;

int main() {
  std::string dir = "/tmp/lsmstats_social";
  std::filesystem::remove_all(dir);

  // Influencer-score distribution: most accounts tiny, few huge.
  DistributionSpec spec;
  spec.spread = SpreadDistribution::kZipfRandom;
  spec.frequency = FrequencyDistribution::kZipf;
  spec.num_values = 3000;
  spec.total_records = 60000;
  spec.domain = ValueDomain(0, 16);
  auto dist = SyntheticDistribution::Generate(spec);

  StatisticsCatalog catalog;
  LocalCatalogSink sink(&catalog);
  DatasetOptions options;
  options.directory = dir;
  options.name = "tweets";
  options.schema = TweetSchema(spec.domain);
  options.synopsis_type = SynopsisType::kWavelet;
  options.synopsis_budget = 256;
  options.memtable_max_entries = 8000;
  options.merge_policy = std::make_shared<TieredMergePolicy>();
  options.sink = &sink;
  auto dataset_or = Dataset::Open(std::move(options));
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  auto& dataset = *dataset_or.value();

  // Stream the firehose: 60k inserts with 10% updates and 10% deletes.
  std::printf("streaming changeable tweet feed...\n");
  TweetGenerator generator(dist, /*payload_bytes=*/120, 7);
  std::vector<Record> base;
  while (generator.HasNext()) base.push_back(generator.Next());
  ChangeableFeedOptions feed_options;
  feed_options.update_ratio = 0.1;
  feed_options.delete_ratio = 0.1;
  ChangeableFeed feed(std::move(base), &dist, 0, feed_options);
  FeedOp op;
  uint64_t ops = 0;
  while (feed.Next(&op)) {
    Status s;
    switch (op.kind) {
      case FeedOp::Kind::kInsert:
        s = dataset.Insert(op.record);
        break;
      case FeedOp::Kind::kUpdate:
        s = dataset.Update(op.record);
        break;
      case FeedOp::Kind::kDelete:
        s = dataset.Delete(op.record.pk);
        break;
    }
    if (!s.ok()) {
      std::fprintf(stderr, "feed op failed: %s\n", s.ToString().c_str());
      return 1;
    }
    ++ops;
  }
  // Demo: flush errors would surface in the queries below.
  (void)dataset.Flush();
  std::printf("  %" PRIu64 " operations, %zu LSM components, %" PRIu64
              " live tweets\n\n",
              ops, dataset.primary()->ComponentCount(),
              dataset.live_records());

  CardinalityEstimator estimator(&catalog, {});
  AccessCostModel cost;
  cost.total_records = static_cast<double>(dataset.live_records());

  // --- Decision 1: index probe vs full scan -------------------------------
  std::printf("Q1: SELECT * FROM tweets WHERE metric BETWEEN lo AND hi\n");
  std::printf("%-22s%-12s%-12s%-12s%-14s%-10s\n", "predicate", "est.card",
              "scan.cost", "probe.cost", "plan", "exact");
  // The Zipf head lives at low metric values, the sparse tail at high ones:
  // a range's width says nothing about its cardinality, which is precisely
  // why the optimizer needs statistics.
  struct Predicate {
    int64_t lo, hi;
  } predicates[] = {
      {0, 80},          // narrow but hits the Zipf head -> scan
      {0, 65535},       // everything -> scan
      {30000, 34000},   // wide but sparse tail -> probe
      {60000, 65535},   // wide, nearly empty -> probe
  };
  for (const Predicate& p : predicates) {
    RangePredicatePlan plan = PlanRangePredicate(
        &estimator, cost, "tweets", kTweetMetricField, p.lo, p.hi);
    uint64_t exact =
        dataset.CountRange(kTweetMetricField, p.lo, p.hi).value();
    std::printf("[%6" PRId64 ",%6" PRId64 "]      %-12.0f%-12.0f%-12.0f%-14s"
                "%-10" PRIu64 "\n",
                p.lo, p.hi, plan.estimated_cardinality, plan.scan_cost,
                plan.probe_cost, AccessPathToString(plan.path), exact);
  }

  // --- Decision 2: join method --------------------------------------------
  std::printf("\nQ2: campaigns JOIN tweets ON tweets.metric = "
              "campaigns.target  (|campaigns| = 200)\n");
  const double outer = 200;
  // Two campaign mixes: one targets the viral head of the distribution, one
  // targets niche accounts. The estimator prices a probe of each mix by the
  // average point cardinality over its target range.
  struct Campaign {
    const char* name;
    int64_t lo, hi;
  } campaigns[] = {
      {"viral-head targets", 0, 200},
      {"niche-tail targets", 30000, 65535},
  };
  for (const Campaign& campaign : campaigns) {
    double matches =
        estimator.EstimateRange("tweets", kTweetMetricField, campaign.lo,
                                campaign.hi) /
        static_cast<double>(campaign.hi - campaign.lo + 1);
    JoinMethod method = ChooseJoinMethod(cost, outer, matches);
    std::printf("  %-20s est. matches/probe %-8.2f scan-join %-8.0f "
                "indexed-NL %-8.0f -> %s\n",
                campaign.name, matches, cost.ScanJoinCost(outer),
                cost.IndexJoinCost(outer, matches),
                JoinMethodToString(method));
  }

  // --- What a statistics-free heuristic would do --------------------------
  std::printf("\nWithout statistics, a heuristic optimizer must guess: it "
              "probes the index for every\nrange predicate, which for "
              "[0,65535] touches every live record through the index —\n"
              "about %.0fx the cost of the scan it should have chosen.\n",
              cost.IndexProbeCost(static_cast<double>(
                  dataset.live_records())) /
                  cost.FullScanCost());

  std::filesystem::remove_all(dir);
  return 0;
}
