file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_antimatter.dir/bench_fig7_antimatter.cc.o"
  "CMakeFiles/bench_fig7_antimatter.dir/bench_fig7_antimatter.cc.o.d"
  "bench_fig7_antimatter"
  "bench_fig7_antimatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_antimatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
