# Empty dependencies file for bench_fig7_antimatter.
# This may be replaced when dependencies are built.
