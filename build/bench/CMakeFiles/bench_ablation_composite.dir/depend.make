# Empty dependencies file for bench_ablation_composite.
# This may be replaced when dependencies are built.
