file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_composite.dir/bench_ablation_composite.cc.o"
  "CMakeFiles/bench_ablation_composite.dir/bench_ablation_composite.cc.o.d"
  "bench_ablation_composite"
  "bench_ablation_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
