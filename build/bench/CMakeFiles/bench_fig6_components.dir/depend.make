# Empty dependencies file for bench_fig6_components.
# This may be replaced when dependencies are built.
