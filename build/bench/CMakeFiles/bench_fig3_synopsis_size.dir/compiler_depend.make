# Empty compiler generated dependencies file for bench_fig3_synopsis_size.
# This may be replaced when dependencies are built.
