# Empty compiler generated dependencies file for bench_ablation_prefixsum.
# This may be replaced when dependencies are built.
