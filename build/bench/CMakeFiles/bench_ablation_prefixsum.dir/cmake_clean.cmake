file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_prefixsum.dir/bench_ablation_prefixsum.cc.o"
  "CMakeFiles/bench_ablation_prefixsum.dir/bench_ablation_prefixsum.cc.o.d"
  "bench_ablation_prefixsum"
  "bench_ablation_prefixsum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_prefixsum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
