file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_query_type.dir/bench_fig4_query_type.cc.o"
  "CMakeFiles/bench_fig4_query_type.dir/bench_fig4_query_type.cc.o.d"
  "bench_fig4_query_type"
  "bench_fig4_query_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_query_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
