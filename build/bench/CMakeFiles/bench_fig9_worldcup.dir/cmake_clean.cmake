file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_worldcup.dir/bench_fig9_worldcup.cc.o"
  "CMakeFiles/bench_fig9_worldcup.dir/bench_fig9_worldcup.cc.o.d"
  "bench_fig9_worldcup"
  "bench_fig9_worldcup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_worldcup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
