# Empty dependencies file for bench_fig9_worldcup.
# This may be replaced when dependencies are built.
