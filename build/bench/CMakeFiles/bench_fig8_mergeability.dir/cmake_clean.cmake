file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mergeability.dir/bench_fig8_mergeability.cc.o"
  "CMakeFiles/bench_fig8_mergeability.dir/bench_fig8_mergeability.cc.o.d"
  "bench_fig8_mergeability"
  "bench_fig8_mergeability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mergeability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
