# Empty dependencies file for bench_fig8_mergeability.
# This may be replaced when dependencies are built.
