file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_analyze.dir/bench_ablation_analyze.cc.o"
  "CMakeFiles/bench_ablation_analyze.dir/bench_ablation_analyze.cc.o.d"
  "bench_ablation_analyze"
  "bench_ablation_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
