# Empty compiler generated dependencies file for bench_ablation_analyze.
# This may be replaced when dependencies are built.
