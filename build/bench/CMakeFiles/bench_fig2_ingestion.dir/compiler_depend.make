# Empty compiler generated dependencies file for bench_fig2_ingestion.
# This may be replaced when dependencies are built.
