file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ingestion.dir/bench_fig2_ingestion.cc.o"
  "CMakeFiles/bench_fig2_ingestion.dir/bench_fig2_ingestion.cc.o.d"
  "bench_fig2_ingestion"
  "bench_fig2_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
