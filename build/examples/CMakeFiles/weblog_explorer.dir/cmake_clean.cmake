file(REMOVE_RECURSE
  "CMakeFiles/weblog_explorer.dir/weblog_explorer.cpp.o"
  "CMakeFiles/weblog_explorer.dir/weblog_explorer.cpp.o.d"
  "weblog_explorer"
  "weblog_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weblog_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
