# Empty compiler generated dependencies file for weblog_explorer.
# This may be replaced when dependencies are built.
