# Empty dependencies file for string_stats.
# This may be replaced when dependencies are built.
