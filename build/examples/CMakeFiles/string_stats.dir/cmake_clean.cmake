file(REMOVE_RECURSE
  "CMakeFiles/string_stats.dir/string_stats.cpp.o"
  "CMakeFiles/string_stats.dir/string_stats.cpp.o.d"
  "string_stats"
  "string_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
