# Empty dependencies file for lsmstats_tests.
# This may be replaced when dependencies are built.
