
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analyze_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/analyze_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/analyze_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/composite_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/composite_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/composite_test.cc.o.d"
  "/root/repo/tests/dataset_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/dataset_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/dataset_test.cc.o.d"
  "/root/repo/tests/estimator_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/estimator_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/estimator_test.cc.o.d"
  "/root/repo/tests/gk_sketch_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/gk_sketch_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/gk_sketch_test.cc.o.d"
  "/root/repo/tests/histogram_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/histogram_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/histogram_test.cc.o.d"
  "/root/repo/tests/lsm_policy_property_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/lsm_policy_property_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/lsm_policy_property_test.cc.o.d"
  "/root/repo/tests/lsm_tree_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/lsm_tree_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/lsm_tree_test.cc.o.d"
  "/root/repo/tests/misc_coverage_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/misc_coverage_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/misc_coverage_test.cc.o.d"
  "/root/repo/tests/optimizer_hints_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/optimizer_hints_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/optimizer_hints_test.cc.o.d"
  "/root/repo/tests/recovery_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/recovery_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/recovery_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/soak_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/soak_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/soak_test.cc.o.d"
  "/root/repo/tests/synopsis_property_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/synopsis_property_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/synopsis_property_test.cc.o.d"
  "/root/repo/tests/voptimal_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/voptimal_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/voptimal_test.cc.o.d"
  "/root/repo/tests/wavelet_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/wavelet_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/wavelet_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/lsmstats_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/lsmstats_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lsmstats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
