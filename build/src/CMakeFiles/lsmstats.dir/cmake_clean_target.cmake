file(REMOVE_RECURSE
  "liblsmstats.a"
)
