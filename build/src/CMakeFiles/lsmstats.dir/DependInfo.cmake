
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/lsmstats.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/cluster_controller.cc" "src/CMakeFiles/lsmstats.dir/cluster/cluster_controller.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/cluster/cluster_controller.cc.o.d"
  "/root/repo/src/cluster/node_controller.cc" "src/CMakeFiles/lsmstats.dir/cluster/node_controller.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/cluster/node_controller.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/lsmstats.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/coding.cc.o.d"
  "/root/repo/src/common/dictionary.cc" "src/CMakeFiles/lsmstats.dir/common/dictionary.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/dictionary.cc.o.d"
  "/root/repo/src/common/file.cc" "src/CMakeFiles/lsmstats.dir/common/file.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/file.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/lsmstats.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/lsmstats.dir/common/random.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/lsmstats.dir/common/status.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/status.cc.o.d"
  "/root/repo/src/common/types.cc" "src/CMakeFiles/lsmstats.dir/common/types.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/common/types.cc.o.d"
  "/root/repo/src/db/dataset.cc" "src/CMakeFiles/lsmstats.dir/db/dataset.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/db/dataset.cc.o.d"
  "/root/repo/src/db/record.cc" "src/CMakeFiles/lsmstats.dir/db/record.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/db/record.cc.o.d"
  "/root/repo/src/lsm/bloom_filter.cc" "src/CMakeFiles/lsmstats.dir/lsm/bloom_filter.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/bloom_filter.cc.o.d"
  "/root/repo/src/lsm/disk_component.cc" "src/CMakeFiles/lsmstats.dir/lsm/disk_component.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/disk_component.cc.o.d"
  "/root/repo/src/lsm/event_listener.cc" "src/CMakeFiles/lsmstats.dir/lsm/event_listener.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/event_listener.cc.o.d"
  "/root/repo/src/lsm/lsm_tree.cc" "src/CMakeFiles/lsmstats.dir/lsm/lsm_tree.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/lsm_tree.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/lsmstats.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/merge_cursor.cc" "src/CMakeFiles/lsmstats.dir/lsm/merge_cursor.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/merge_cursor.cc.o.d"
  "/root/repo/src/lsm/merge_policy.cc" "src/CMakeFiles/lsmstats.dir/lsm/merge_policy.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/lsm/merge_policy.cc.o.d"
  "/root/repo/src/stats/analyze_job.cc" "src/CMakeFiles/lsmstats.dir/stats/analyze_job.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/analyze_job.cc.o.d"
  "/root/repo/src/stats/cardinality_estimator.cc" "src/CMakeFiles/lsmstats.dir/stats/cardinality_estimator.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/cardinality_estimator.cc.o.d"
  "/root/repo/src/stats/composite_collector.cc" "src/CMakeFiles/lsmstats.dir/stats/composite_collector.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/composite_collector.cc.o.d"
  "/root/repo/src/stats/optimizer_hints.cc" "src/CMakeFiles/lsmstats.dir/stats/optimizer_hints.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/optimizer_hints.cc.o.d"
  "/root/repo/src/stats/statistics_catalog.cc" "src/CMakeFiles/lsmstats.dir/stats/statistics_catalog.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/statistics_catalog.cc.o.d"
  "/root/repo/src/stats/statistics_collector.cc" "src/CMakeFiles/lsmstats.dir/stats/statistics_collector.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/statistics_collector.cc.o.d"
  "/root/repo/src/stats/unsorted_field_collector.cc" "src/CMakeFiles/lsmstats.dir/stats/unsorted_field_collector.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/stats/unsorted_field_collector.cc.o.d"
  "/root/repo/src/synopsis/builder.cc" "src/CMakeFiles/lsmstats.dir/synopsis/builder.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/builder.cc.o.d"
  "/root/repo/src/synopsis/equi_height_histogram.cc" "src/CMakeFiles/lsmstats.dir/synopsis/equi_height_histogram.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/equi_height_histogram.cc.o.d"
  "/root/repo/src/synopsis/equi_width_histogram.cc" "src/CMakeFiles/lsmstats.dir/synopsis/equi_width_histogram.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/equi_width_histogram.cc.o.d"
  "/root/repo/src/synopsis/gk_sketch.cc" "src/CMakeFiles/lsmstats.dir/synopsis/gk_sketch.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/gk_sketch.cc.o.d"
  "/root/repo/src/synopsis/grid_histogram.cc" "src/CMakeFiles/lsmstats.dir/synopsis/grid_histogram.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/grid_histogram.cc.o.d"
  "/root/repo/src/synopsis/maxdiff_histogram.cc" "src/CMakeFiles/lsmstats.dir/synopsis/maxdiff_histogram.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/maxdiff_histogram.cc.o.d"
  "/root/repo/src/synopsis/synopsis.cc" "src/CMakeFiles/lsmstats.dir/synopsis/synopsis.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/synopsis.cc.o.d"
  "/root/repo/src/synopsis/wavelet.cc" "src/CMakeFiles/lsmstats.dir/synopsis/wavelet.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/wavelet.cc.o.d"
  "/root/repo/src/synopsis/wavelet_builder.cc" "src/CMakeFiles/lsmstats.dir/synopsis/wavelet_builder.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/wavelet_builder.cc.o.d"
  "/root/repo/src/synopsis/wavelet_naive.cc" "src/CMakeFiles/lsmstats.dir/synopsis/wavelet_naive.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/synopsis/wavelet_naive.cc.o.d"
  "/root/repo/src/workload/distribution.cc" "src/CMakeFiles/lsmstats.dir/workload/distribution.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/workload/distribution.cc.o.d"
  "/root/repo/src/workload/feed.cc" "src/CMakeFiles/lsmstats.dir/workload/feed.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/workload/feed.cc.o.d"
  "/root/repo/src/workload/query_workload.cc" "src/CMakeFiles/lsmstats.dir/workload/query_workload.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/workload/query_workload.cc.o.d"
  "/root/repo/src/workload/tweets.cc" "src/CMakeFiles/lsmstats.dir/workload/tweets.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/workload/tweets.cc.o.d"
  "/root/repo/src/workload/worldcup.cc" "src/CMakeFiles/lsmstats.dir/workload/worldcup.cc.o" "gcc" "src/CMakeFiles/lsmstats.dir/workload/worldcup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
