# Empty compiler generated dependencies file for lsmstats.
# This may be replaced when dependencies are built.
